//! A reliable transport for Tempest protocols on a lossy network.
//!
//! The paper assumes the CM-5-class network never loses a packet; the
//! `tt-net` fault plan (drops, duplication, detected corruption,
//! transient partitions) breaks that assumption. [`Reliable`] wraps any
//! [`Protocol`] and restores exactly-once, per-link-FIFO delivery on top
//! of the lossy wire, so the wrapped protocol runs unmodified:
//!
//! - every outgoing message to a remote node carries a **sequence
//!   number** (one sequence space per ordered sender→receiver pair,
//!   across *both* virtual networks — Stache and the `kv_update`
//!   protocol both rely on cross-VN per-pair FIFO);
//! - the receiver delivers strictly in sequence order, buffering
//!   early arrivals and suppressing stale duplicates (idempotence:
//!   a retransmitted copy of an already-delivered message is dropped,
//!   not re-executed), and returns **cumulative acks** ("I have
//!   everything below `n`") on the response network;
//! - the sender retransmits unacknowledged messages on a cycle-domain
//!   **timeout with exponential backoff**, using the machine's protocol
//!   timer ([`tt_tempest::TempestCtx::set_timer`]);
//! - a message still unacknowledged after [`ReliableConfig::max_retries`]
//!   retransmissions raises a Tempest-visible [`NetFault`] — graceful
//!   degradation with a deterministic diagnostic instead of a hang
//!   behind a permanently dead link.
//!
//! Determinism: all transport state advances only on handler execution
//! (sends, deliveries, timer firings), which the simulator orders by the
//! same deterministic merge keys as every other event, so a faulty run
//! replays bit-exactly at any `--sim-threads` count.
//!
//! Self-sends never traverse the wire (the network delivers them
//! fault-free), so they bypass sequencing entirely.

use std::collections::BTreeMap;

use tt_base::stats::Report;
use tt_base::{Cycles, NodeId};
use tt_net::{Payload, VirtualNet};
use tt_tempest::{
    BlockDirSnapshot, BlockFault, HandlerId, Message, NetFault, PageFault, Protocol, TempestCtx,
    ThreadId, UserCall, VnPolicy,
};

/// Transport-level cumulative acknowledgment. Arg 0 is the receiver's
/// `next_expected` sequence number for the acked link: "I have delivered
/// everything below this". Acks are unsequenced (an ack loss is repaired
/// by the next ack or a retransmission) and travel on the response
/// network so they can never be blocked behind requests.
pub const REL_ACK: HandlerId = HandlerId(0xF0);

/// Instruction cost charged per transport bookkeeping step (sequence
/// strip, ack processing) — the retry machinery is protocol code and
/// pays NP cycles like any other handler.
const REL_BOOKKEEP_INSTR: u64 = 2;
/// Instruction cost charged per retransmission.
const REL_RETRANSMIT_INSTR: u64 = 6;

/// Tuning knobs for [`Reliable`].
#[derive(Clone, Copy, Debug)]
pub struct ReliableConfig {
    /// Initial retransmission timeout (cycles after the send).
    pub timeout: Cycles,
    /// Backoff ceiling: per-message timeout doubles on every
    /// retransmission up to this cap.
    pub backoff_cap: Cycles,
    /// Retransmissions of one message before the transport gives up and
    /// raises a [`NetFault`]. With the default timeout/cap the retry
    /// horizon (~80k cycles) comfortably outlasts the longest transient
    /// partition `FaultSpec::from_seed` can schedule (~9k cycles).
    pub max_retries: u32,
    /// Suppress stale duplicates at the receiver. `false` plants the
    /// classic retransmission bug — a retried message is re-executed on
    /// redelivery — which the tt-check fault fuzzer must catch.
    pub dedupe: bool,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            timeout: Cycles::new(128),
            backoff_cap: Cycles::new(4096),
            max_retries: 24,
            dedupe: true,
        }
    }
}

/// Transport counters, exposed in reports as `rel.*`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RelStats {
    /// Sequenced messages sent (first transmissions).
    pub sent: u64,
    /// Retransmissions.
    pub retransmits: u64,
    /// Acks sent.
    pub acks_sent: u64,
    /// Acks received.
    pub acks_received: u64,
    /// Stale duplicates suppressed at the receiver.
    pub stale_suppressed: u64,
    /// Stale duplicates delivered anyway (`dedupe: false` planted bug).
    pub stale_delivered: u64,
    /// Early arrivals parked in the reorder buffer.
    pub reordered: u64,
}

/// One retransmittable in-flight message.
#[derive(Clone, Debug)]
struct Inflight {
    vn: VirtualNet,
    handler: HandlerId,
    /// Wire payload, sequence word already appended.
    payload: Payload,
    /// Cycle at which the retransmission timer considers this message
    /// lost.
    deadline: Cycles,
    /// Current per-message timeout (doubles per retry, capped).
    backoff: Cycles,
    retries: u32,
}

/// Sender-side state for one ordered link (this node → `dst`).
#[derive(Debug, Default)]
struct LinkTx {
    next_seq: u64,
    inflight: BTreeMap<u64, Inflight>,
}

/// Receiver-side state for one ordered link (`src` → this node).
#[derive(Debug, Default)]
struct LinkRx {
    next_expected: u64,
    /// Early arrivals keyed by sequence number.
    reorder: BTreeMap<u64, (VirtualNet, HandlerId, Payload)>,
}

/// Mutable transport state, split from the wrapped protocol so a
/// [`RelCtx`] can borrow it while the inner protocol runs.
#[derive(Debug, Default)]
struct RelState {
    /// Keyed by destination node (BTreeMap for deterministic iteration).
    tx: BTreeMap<u16, LinkTx>,
    /// Keyed by source node.
    rx: BTreeMap<u16, LinkRx>,
    /// Deadline the machine timer is currently armed for, if any.
    timer_at: Option<Cycles>,
    stats: RelStats,
}

impl RelState {
    /// Arms the machine timer for `deadline` if it is not already armed
    /// at or before it. One timer serves all links; spurious firings
    /// rescan and re-arm.
    fn arm(&mut self, ctx: &mut dyn TempestCtx, deadline: Cycles) {
        if self.timer_at.is_none_or(|t| deadline < t) {
            ctx.set_timer(deadline, 0);
            self.timer_at = Some(deadline);
        }
    }
}

/// Wraps a protocol's [`TempestCtx`] so that every remote send is
/// sequenced and registered for retransmission. All other machine
/// services pass straight through.
struct RelCtx<'a> {
    ctx: &'a mut dyn TempestCtx,
    cfg: ReliableConfig,
    state: &'a mut RelState,
}

impl TempestCtx for RelCtx<'_> {
    fn node(&self) -> NodeId {
        self.ctx.node()
    }
    fn nodes(&self) -> usize {
        self.ctx.nodes()
    }
    fn now(&self) -> Cycles {
        self.ctx.now()
    }
    fn charge(&mut self, instructions: u64) {
        self.ctx.charge(instructions);
    }
    fn protocol_data_access(&mut self, key: u64) {
        self.ctx.protocol_data_access(key);
    }

    fn send(
        &mut self,
        dst: NodeId,
        vn: VirtualNet,
        handler: HandlerId,
        mut payload: Payload,
    ) {
        if dst == self.ctx.node() {
            // Self-sends never touch the wire and are never faulted.
            self.ctx.send(dst, vn, handler, payload);
            return;
        }
        let link = self.state.tx.entry(dst.raw()).or_default();
        let seq = link.next_seq;
        link.next_seq += 1;
        payload.push_word(seq);
        let deadline = self.ctx.now() + self.cfg.timeout;
        link.inflight.insert(
            seq,
            Inflight {
                vn,
                handler,
                payload: payload.clone(),
                deadline,
                backoff: self.cfg.timeout,
                retries: 0,
            },
        );
        self.state.stats.sent += 1;
        self.ctx.charge(REL_BOOKKEEP_INSTR);
        self.ctx.send(dst, vn, handler, payload);
        self.state.arm(self.ctx, deadline);
    }

    fn bulk_transfer(&mut self, request: tt_tempest::BulkRequest) {
        self.ctx.bulk_transfer(request);
    }
    fn set_timer(&mut self, at: Cycles, token: u64) {
        self.ctx.set_timer(at, token);
    }
    fn raise_net_fault(&mut self, fault: NetFault) {
        self.ctx.raise_net_fault(fault);
    }
    fn alloc_page(&mut self) -> tt_base::addr::Ppn {
        self.ctx.alloc_page()
    }
    fn free_page(&mut self, ppn: tt_base::addr::Ppn) {
        self.ctx.free_page(ppn);
    }
    fn map_page(
        &mut self,
        vpn: tt_base::addr::Vpn,
        ppn: tt_base::addr::Ppn,
    ) -> Result<(), tt_tempest::TempestError> {
        self.ctx.map_page(vpn, ppn)
    }
    fn unmap_page(
        &mut self,
        vpn: tt_base::addr::Vpn,
    ) -> Result<tt_base::addr::Ppn, tt_tempest::TempestError> {
        self.ctx.unmap_page(vpn)
    }
    fn translate(&self, vpn: tt_base::addr::Vpn) -> Option<tt_base::addr::Ppn> {
        self.ctx.translate(vpn)
    }
    fn page_meta(&self, vpn: tt_base::addr::Vpn) -> Option<tt_mem::PageMeta> {
        self.ctx.page_meta(vpn)
    }
    fn set_page_meta(&mut self, vpn: tt_base::addr::Vpn, meta: tt_mem::PageMeta) {
        self.ctx.set_page_meta(vpn, meta);
    }
    fn allocated_bytes(&self) -> usize {
        self.ctx.allocated_bytes()
    }
    fn read_tag(&self, addr: tt_base::VAddr) -> tt_mem::Tag {
        self.ctx.read_tag(addr)
    }
    fn set_tag(&mut self, addr: tt_base::VAddr, tag: tt_mem::Tag) {
        self.ctx.set_tag(addr, tag);
    }
    fn set_page_tags(&mut self, vpn: tt_base::addr::Vpn, tag: tt_mem::Tag) {
        self.ctx.set_page_tags(vpn, tag);
    }
    fn invalidate_block(&mut self, addr: tt_base::VAddr) {
        self.ctx.invalidate_block(addr);
    }
    fn force_read_word(&mut self, addr: tt_base::VAddr) -> u64 {
        self.ctx.force_read_word(addr)
    }
    fn force_write_word(&mut self, addr: tt_base::VAddr, value: u64) {
        self.ctx.force_write_word(addr, value);
    }
    fn force_read_block(&mut self, addr: tt_base::VAddr) -> [u8; tt_base::addr::BLOCK_BYTES] {
        self.ctx.force_read_block(addr)
    }
    fn force_write_block(
        &mut self,
        addr: tt_base::VAddr,
        block: &[u8; tt_base::addr::BLOCK_BYTES],
    ) {
        self.ctx.force_write_block(addr, block);
    }
    fn resume(&mut self, thread: ThreadId) {
        self.ctx.resume(thread);
    }
}

/// Reliable-delivery wrapper: see the module docs.
pub struct Reliable {
    inner: Box<dyn Protocol>,
    cfg: ReliableConfig,
    state: RelState,
}

impl Reliable {
    /// Wraps `inner` with the default configuration.
    pub fn new(inner: Box<dyn Protocol>) -> Self {
        Reliable::with_config(inner, ReliableConfig::default())
    }

    /// Wraps `inner` with an explicit configuration.
    pub fn with_config(inner: Box<dyn Protocol>, cfg: ReliableConfig) -> Self {
        Reliable {
            inner,
            cfg,
            state: RelState::default(),
        }
    }

    /// Transport counters.
    pub fn stats(&self) -> &RelStats {
        &self.state.stats
    }

    /// Delivers a message to the wrapped protocol, with its sends
    /// sequenced through this transport.
    fn deliver(&mut self, ctx: &mut dyn TempestCtx, msg: Message) {
        let mut rctx = RelCtx {
            ctx,
            cfg: self.cfg,
            state: &mut self.state,
        };
        self.inner.on_message(&mut rctx, msg);
    }

    /// Sends the current cumulative ack for the link from `src`.
    fn send_ack(&mut self, ctx: &mut dyn TempestCtx, src: NodeId) {
        let next = self.state.rx.entry(src.raw()).or_default().next_expected;
        self.state.stats.acks_sent += 1;
        ctx.charge(REL_BOOKKEEP_INSTR);
        ctx.send(src, VirtualNet::Response, REL_ACK, Payload::args(&[next]));
    }

    /// Processes a cumulative ack from `src`: everything below `upto`
    /// is delivered and need never be retransmitted. Duplicate or stale
    /// acks are harmless (the range is simply already empty).
    fn on_ack(&mut self, ctx: &mut dyn TempestCtx, src: NodeId, upto: u64) {
        self.state.stats.acks_received += 1;
        ctx.charge(REL_BOOKKEEP_INSTR);
        if let Some(link) = self.state.tx.get_mut(&src.raw()) {
            let acked: Vec<u64> = link.inflight.range(..upto).map(|(&s, _)| s).collect();
            for s in acked {
                link.inflight.remove(&s);
            }
        }
    }
}

impl Protocol for Reliable {
    fn init(&mut self, ctx: &mut dyn TempestCtx) {
        let mut rctx = RelCtx {
            ctx,
            cfg: self.cfg,
            state: &mut self.state,
        };
        self.inner.init(&mut rctx);
    }

    fn on_page_fault(&mut self, ctx: &mut dyn TempestCtx, fault: PageFault) {
        let mut rctx = RelCtx {
            ctx,
            cfg: self.cfg,
            state: &mut self.state,
        };
        self.inner.on_page_fault(&mut rctx, fault);
    }

    fn on_block_fault(&mut self, ctx: &mut dyn TempestCtx, fault: BlockFault) {
        let mut rctx = RelCtx {
            ctx,
            cfg: self.cfg,
            state: &mut self.state,
        };
        self.inner.on_block_fault(&mut rctx, fault);
    }

    fn on_user_call(&mut self, ctx: &mut dyn TempestCtx, thread: ThreadId, call: UserCall) {
        let mut rctx = RelCtx {
            ctx,
            cfg: self.cfg,
            state: &mut self.state,
        };
        self.inner.on_user_call(&mut rctx, thread, call);
    }

    fn on_message(&mut self, ctx: &mut dyn TempestCtx, msg: Message) {
        if msg.handler == REL_ACK {
            self.on_ack(ctx, msg.src, msg.arg(0));
            return;
        }
        if msg.src == ctx.node() {
            // Self-sends bypass sequencing on both ends.
            self.deliver(ctx, msg);
            return;
        }
        let mut msg = msg;
        let seq = msg
            .payload
            .pop_word()
            .expect("sequenced message carries a trailing sequence word");
        ctx.charge(REL_BOOKKEEP_INSTR);
        let src = msg.src;
        let next = self.state.rx.entry(src.raw()).or_default().next_expected;
        if seq < next {
            // A stale duplicate: a retransmitted copy of a message this
            // node already delivered. Idempotence demands suppression —
            // re-ack so the sender stops retrying.
            if self.cfg.dedupe {
                self.state.stats.stale_suppressed += 1;
            } else {
                self.state.stats.stale_delivered += 1;
                self.deliver(ctx, msg);
            }
            self.send_ack(ctx, src);
            return;
        }
        if seq > next {
            // Early arrival (the predecessor was lost or is still in
            // flight): park it; redundant copies of a parked message
            // are ignored.
            self.state.stats.reordered += 1;
            let rxl = self.state.rx.get_mut(&src.raw()).expect("entry created above");
            rxl.reorder
                .entry(seq)
                .or_insert((msg.vn, msg.handler, msg.payload));
            self.send_ack(ctx, src);
            return;
        }
        // In order: deliver, then drain any parked successors.
        self.deliver(ctx, msg);
        loop {
            let rxl = self.state.rx.get_mut(&src.raw()).expect("entry created above");
            rxl.next_expected += 1;
            let n = rxl.next_expected;
            match rxl.reorder.remove(&n) {
                Some((vn, handler, payload)) => self.deliver(
                    ctx,
                    Message {
                        src,
                        vn,
                        handler,
                        payload,
                    },
                ),
                None => break,
            }
        }
        self.send_ack(ctx, src);
    }

    fn on_timer(&mut self, ctx: &mut dyn TempestCtx, _token: u64) {
        let now = ctx.now();
        self.state.timer_at = None;
        ctx.charge(REL_BOOKKEEP_INSTR);
        let mut faults = Vec::new();
        for (&dst, link) in self.state.tx.iter_mut() {
            let due: Vec<u64> = link
                .inflight
                .iter()
                .filter(|(_, m)| m.deadline <= now)
                .map(|(&s, _)| s)
                .collect();
            for s in due {
                let m = link.inflight.get_mut(&s).expect("due seq is inflight");
                if m.retries >= self.cfg.max_retries {
                    let m = link.inflight.remove(&s).expect("due seq is inflight");
                    faults.push(NetFault {
                        node: ctx.node(),
                        dst: NodeId::new(dst),
                        vn: m.vn,
                        handler: m.handler,
                        retries: m.retries,
                    });
                    continue;
                }
                m.retries += 1;
                m.deadline = now + m.backoff;
                m.backoff =
                    Cycles::new((m.backoff.raw() * 2).min(self.cfg.backoff_cap.raw()));
                self.state.stats.retransmits += 1;
                ctx.charge(REL_RETRANSMIT_INSTR);
                ctx.send(NodeId::new(dst), m.vn, m.handler, m.payload.clone());
            }
        }
        let earliest = self
            .state
            .tx
            .values()
            .flat_map(|l| l.inflight.values().map(|m| m.deadline))
            .min();
        if let Some(d) = earliest {
            self.state.arm(ctx, d);
        }
        for f in faults {
            // Deterministic graceful degradation: on a real machine this
            // terminates the run with the fault's diagnostic.
            ctx.raise_net_fault(f);
        }
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn report(&self, report: &mut Report) {
        self.inner.report(report);
        let s = &self.state.stats;
        report.push_count("rel.sent", s.sent);
        report.push_count("rel.retransmits", s.retransmits);
        report.push_count("rel.acks_sent", s.acks_sent);
        report.push_count("rel.acks_received", s.acks_received);
        report.push_count("rel.stale_suppressed", s.stale_suppressed);
        report.push_count("rel.stale_delivered", s.stale_delivered);
        report.push_count("rel.reordered", s.reordered);
    }

    fn inspect_directory(&self, out: &mut Vec<BlockDirSnapshot>) {
        self.inner.inspect_directory(out);
    }
}

/// Extends a protocol's virtual-net policy with the transport's ack
/// handler (acks travel on the response network).
pub fn reliable_vn_policy(base: VnPolicy) -> VnPolicy {
    base.expect(REL_ACK, VirtualNet::Response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_tempest::testing::MockCtx;

    use std::sync::{Arc, Mutex};

    type Log = Arc<Mutex<Vec<(HandlerId, Vec<u64>)>>>;

    /// Records deliveries into a shared log; sends one sequenced message
    /// (to the node named by `call.op`) per user call.
    struct Recorder {
        log: Log,
    }

    const PING: HandlerId = HandlerId(0x77);

    impl Protocol for Recorder {
        fn on_page_fault(&mut self, _ctx: &mut dyn TempestCtx, _fault: PageFault) {
            unreachable!("transport tests take no page faults");
        }
        fn on_block_fault(&mut self, _ctx: &mut dyn TempestCtx, _fault: BlockFault) {
            unreachable!("transport tests take no block faults");
        }
        fn on_message(&mut self, _ctx: &mut dyn TempestCtx, msg: Message) {
            self.log.lock().unwrap().push((msg.handler, msg.payload.words().to_vec()));
        }
        fn on_user_call(&mut self, ctx: &mut dyn TempestCtx, thread: ThreadId, call: UserCall) {
            ctx.send(
                NodeId::new(call.op as u16),
                VirtualNet::Request,
                PING,
                Payload::args(&[call.arg]),
            );
            ctx.resume(thread);
        }
    }

    fn rig(cfg: ReliableConfig) -> (Reliable, MockCtx, Log) {
        let log: Log = Arc::default();
        (
            Reliable::with_config(Box::new(Recorder { log: log.clone() }), cfg),
            MockCtx::new(0, 4),
            log,
        )
    }

    fn delivered(log: &Log) -> Vec<(HandlerId, Vec<u64>)> {
        log.lock().unwrap().clone()
    }

    fn wire(src: u16, seq: u64, words: Vec<u64>) -> Message {
        let mut words = words;
        words.push(seq);
        Message {
            src: NodeId::new(src),
            vn: VirtualNet::Request,
            handler: PING,
            payload: Payload::args(&words),
        }
    }

    #[test]
    fn sends_are_sequenced_and_tracked() {
        let (mut r, mut ctx, _log) = rig(ReliableConfig::default());
        r.on_user_call(&mut ctx, ThreadId(NodeId::new(0)), UserCall { op: 1, arg: 9 });
        r.on_user_call(&mut ctx, ThreadId(NodeId::new(0)), UserCall { op: 1, arg: 10 });
        assert_eq!(ctx.sent.len(), 2);
        assert_eq!(ctx.sent[0].payload.words(), &[9, 0], "seq 0 appended");
        assert_eq!(ctx.sent[1].payload.words(), &[10, 1], "seq 1 appended");
        assert_eq!(r.stats().sent, 2);
        assert_eq!(ctx.timers.len(), 1, "one timer for the earliest deadline");
        assert_eq!(ctx.timers[0].0, Cycles::new(128));
    }

    #[test]
    fn self_sends_bypass_sequencing() {
        let (mut r, mut ctx, log) = rig(ReliableConfig::default());
        r.on_user_call(&mut ctx, ThreadId(NodeId::new(0)), UserCall { op: 0, arg: 5 });
        assert_eq!(ctx.sent[0].payload.words(), &[5], "no seq word");
        assert_eq!(r.stats().sent, 0);
        assert!(ctx.timers.is_empty());
        // And a self-delivered message needs no seq word stripped.
        let m = Message {
            src: NodeId::new(0),
            vn: VirtualNet::Request,
            handler: PING,
            payload: Payload::args(&[5]),
        };
        r.on_message(&mut ctx, m);
        assert_eq!(delivered(&log), vec![(PING, vec![5])]);
    }

    #[test]
    fn in_order_delivery_acks_cumulatively() {
        let (mut r, mut ctx, log) = rig(ReliableConfig::default());
        r.on_message(&mut ctx, wire(2, 0, vec![40]));
        r.on_message(&mut ctx, wire(2, 1, vec![41]));
        assert_eq!(delivered(&log), vec![(PING, vec![40]), (PING, vec![41])]);
        let acks: Vec<_> = ctx
            .sent
            .iter()
            .filter(|s| s.handler == REL_ACK)
            .map(|s| (s.dst, s.vn, s.payload.words()[0]))
            .collect();
        assert_eq!(
            acks,
            vec![
                (NodeId::new(2), VirtualNet::Response, 1),
                (NodeId::new(2), VirtualNet::Response, 2)
            ]
        );
    }

    #[test]
    fn early_arrivals_are_parked_and_drained_in_order() {
        let (mut r, mut ctx, log) = rig(ReliableConfig::default());
        r.on_message(&mut ctx, wire(2, 2, vec![42]));
        r.on_message(&mut ctx, wire(2, 1, vec![41]));
        assert!(delivered(&log).is_empty(), "nothing until seq 0 arrives");
        assert_eq!(r.stats().reordered, 2);
        r.on_message(&mut ctx, wire(2, 0, vec![40]));
        assert_eq!(
            delivered(&log),
            vec![(PING, vec![40]), (PING, vec![41]), (PING, vec![42])]
        );
        let last_ack = ctx.sent.iter().rev().find(|s| s.handler == REL_ACK).unwrap();
        assert_eq!(last_ack.payload.words()[0], 3, "cumulative ack covers the drain");
    }

    #[test]
    fn stale_duplicates_are_suppressed_and_reacked() {
        let (mut r, mut ctx, log) = rig(ReliableConfig::default());
        r.on_message(&mut ctx, wire(2, 0, vec![40]));
        r.on_message(&mut ctx, wire(2, 0, vec![40])); // retransmitted copy
        assert_eq!(delivered(&log).len(), 1, "idempotent redelivery");
        assert_eq!(r.stats().stale_suppressed, 1);
        let acks: Vec<u64> = ctx
            .sent
            .iter()
            .filter(|s| s.handler == REL_ACK)
            .map(|s| s.payload.words()[0])
            .collect();
        assert_eq!(acks, vec![1, 1], "duplicate is re-acked so the sender stops");
    }

    #[test]
    fn dedupe_off_replays_the_duplicate_into_the_protocol() {
        let cfg = ReliableConfig {
            dedupe: false,
            ..ReliableConfig::default()
        };
        let (mut r, mut ctx, log) = rig(cfg);
        r.on_message(&mut ctx, wire(2, 0, vec![40]));
        r.on_message(&mut ctx, wire(2, 0, vec![40]));
        assert_eq!(delivered(&log).len(), 2, "planted bug: re-execution");
        assert_eq!(r.stats().stale_delivered, 1);
    }

    #[test]
    fn timeout_fires_exactly_at_the_window_boundary() {
        let (mut r, mut ctx, _log) = rig(ReliableConfig::default());
        r.on_user_call(&mut ctx, ThreadId(NodeId::new(0)), UserCall { op: 1, arg: 9 });
        // One cycle before the deadline: no retransmission, timer re-armed.
        ctx.advance(Cycles::new(127));
        r.on_timer(&mut ctx, 0);
        assert_eq!(r.stats().retransmits, 0);
        assert_eq!(ctx.timers.last().unwrap().0, Cycles::new(128), "re-armed");
        // Exactly at the deadline: the message is retransmitted.
        ctx.advance(Cycles::new(1));
        r.on_timer(&mut ctx, 0);
        assert_eq!(r.stats().retransmits, 1);
        let last = ctx.sent.last().unwrap();
        assert_eq!(last.payload.words(), &[9, 0], "same wire payload, same seq");
        // Backoff doubled: next deadline is 128 + 128*2? No — the new
        // deadline uses the pre-doubling backoff (128), the *next* one
        // doubles.
        assert_eq!(ctx.timers.last().unwrap().0, Cycles::new(128 + 128));
    }

    #[test]
    fn ack_after_retry_clears_inflight_and_stops_the_clock() {
        let (mut r, mut ctx, _log) = rig(ReliableConfig::default());
        r.on_user_call(&mut ctx, ThreadId(NodeId::new(0)), UserCall { op: 1, arg: 9 });
        ctx.advance(Cycles::new(128));
        r.on_timer(&mut ctx, 0);
        assert_eq!(r.stats().retransmits, 1);
        // The (late) ack for the original arrives after the retry.
        let ack = Message {
            src: NodeId::new(1),
            vn: VirtualNet::Response,
            handler: REL_ACK,
            payload: Payload::args(&[1]),
        };
        r.on_message(&mut ctx, ack.clone());
        // A duplicate ack (the retry also got acked) is harmless.
        r.on_message(&mut ctx, ack);
        assert_eq!(r.stats().acks_received, 2);
        // The next timer firing finds nothing due and arms nothing.
        let timers_before = ctx.timers.len();
        ctx.advance(Cycles::new(10_000));
        r.on_timer(&mut ctx, 0);
        assert_eq!(r.stats().retransmits, 1, "nothing left to retry");
        assert_eq!(ctx.timers.len(), timers_before, "clock stopped");
    }

    #[test]
    fn backoff_doubles_up_to_the_cap() {
        let cfg = ReliableConfig {
            timeout: Cycles::new(100),
            backoff_cap: Cycles::new(400),
            max_retries: 10,
            dedupe: true,
        };
        let (mut r, mut ctx, _log) = rig(cfg);
        r.on_user_call(&mut ctx, ThreadId(NodeId::new(0)), UserCall { op: 1, arg: 9 });
        let mut gaps = Vec::new();
        let mut last_deadline = Cycles::new(100);
        for _ in 0..4 {
            ctx.advance(last_deadline - ctx.now());
            r.on_timer(&mut ctx, 0);
            let next = ctx.timers.last().unwrap().0;
            gaps.push((next - ctx.now()).raw());
            last_deadline = next;
        }
        assert_eq!(gaps, vec![100, 200, 400, 400], "doubling, then capped");
    }

    #[test]
    fn exhausted_retries_raise_a_net_fault() {
        let cfg = ReliableConfig {
            timeout: Cycles::new(10),
            backoff_cap: Cycles::new(10),
            max_retries: 2,
            dedupe: true,
        };
        let (mut r, mut ctx, _log) = rig(cfg);
        r.on_user_call(&mut ctx, ThreadId(NodeId::new(0)), UserCall { op: 3, arg: 9 });
        for _ in 0..4 {
            ctx.advance(Cycles::new(10));
            r.on_timer(&mut ctx, 0);
        }
        assert_eq!(r.stats().retransmits, 2, "the budget");
        assert_eq!(ctx.net_faults.len(), 1, "then the transport gives up");
        let f = ctx.net_faults[0];
        assert_eq!(f.dst, NodeId::new(3));
        assert_eq!(f.handler, PING);
        assert_eq!(f.retries, 2);
        // Giving up is terminal for that message: no further retries.
        ctx.advance(Cycles::new(1000));
        r.on_timer(&mut ctx, 0);
        assert_eq!(r.stats().retransmits, 2);
    }

    #[test]
    fn partition_healing_mid_retransmit_converges() {
        // Model a partition: several timeouts elapse with no ack (the
        // copies are being lost), then the link heals and a stale
        // duplicate plus the ack arrive. The sender must stop cleanly.
        let (mut r, mut ctx, _log) = rig(ReliableConfig::default());
        r.on_user_call(&mut ctx, ThreadId(NodeId::new(0)), UserCall { op: 1, arg: 9 });
        for _ in 0..3 {
            let deadline = ctx.timers.last().unwrap().0;
            ctx.advance(deadline - ctx.now());
            r.on_timer(&mut ctx, 0);
        }
        assert_eq!(r.stats().retransmits, 3);
        // Heal: the receiver finally got a copy and acks it.
        r.on_message(
            &mut ctx,
            Message {
                src: NodeId::new(1),
                vn: VirtualNet::Response,
                handler: REL_ACK,
                payload: Payload::args(&[1]),
            },
        );
        ctx.advance(Cycles::new(100_000));
        r.on_timer(&mut ctx, 0);
        assert_eq!(r.stats().retransmits, 3, "healed link needs no more copies");
        assert!(ctx.net_faults.is_empty());
    }

    #[test]
    fn vn_policy_extension_covers_the_ack() {
        let policy = reliable_vn_policy(crate::vn_policy());
        assert_eq!(policy.expected(REL_ACK), Some(VirtualNet::Response));
        assert_eq!(
            policy.expected(crate::stache::GET_RO),
            Some(VirtualNet::Request)
        );
    }
}
