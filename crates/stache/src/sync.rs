//! Synchronization primitives on Tempest (the paper's footnote 1:
//! *"We are investigating adding a set of synchronization primitives"*).
//!
//! [`LockLayer`] adds queue-based locks to any underlying protocol. Each
//! lock is identified by a small integer and *homed* on node
//! `id mod nodes`; the home's NP serializes acquisition:
//!
//! - `ACQUIRE` (an application [`UserCall`]) suspends the calling thread
//!   and sends a request to the lock's home; the home grants immediately
//!   or appends the requester to a FIFO queue.
//! - The grant message resumes the thread.
//! - `RELEASE` notifies the home (fire-and-forget; the releasing thread
//!   continues immediately) and the home grants the next waiter.
//!
//! This is exactly the kind of policy the Tempest mechanisms make cheap:
//! a distributed queue lock in a few dozen lines of user-level handler
//! code, with the NP's atomic run-to-completion handlers standing in for
//! the usual atomic instructions. Because grants are serialized at the
//! home, mutual exclusion holds by construction — and the test suite
//! *observes* it end-to-end by having each critical section read back a
//! token only the holder could have written.
//!
//! [`UserCall`]: tt_tempest::UserCall

use std::collections::VecDeque;

use tt_base::stats::{Counter, Report};
use tt_base::{FxHashMap, NodeId};
use tt_net::{Payload, VirtualNet};
use tt_tempest::{
    BlockFault, HandlerId, Message, PageFault, Protocol, TempestCtx, ThreadId, UserCall,
};

/// `UserCall::op` to acquire a lock; `arg` is the lock id.
pub const ACQUIRE_OP: u32 = 0x10;
/// `UserCall::op` to release a lock; `arg` is the lock id.
pub const RELEASE_OP: u32 = 0x11;

/// Lock request. Args: `[lock_id]`.
pub const LOCK_REQ: HandlerId = HandlerId(0x50);
/// Lock grant. Args: `[lock_id]`.
pub const LOCK_GRANT: HandlerId = HandlerId(0x51);
/// Lock release. Args: `[lock_id]`.
pub const LOCK_REL: HandlerId = HandlerId(0x52);

/// Base instruction cost of each lock handler.
const LOCK_HANDLER_INSTR: u64 = 10;

/// Home-side state of one lock.
#[derive(Clone, Debug, Default)]
struct LockState {
    holder: Option<NodeId>,
    queue: VecDeque<NodeId>,
}

/// Lock statistics for one node.
#[derive(Clone, Debug, Default)]
pub struct LockStats {
    /// Acquisitions completed by this node's threads.
    pub acquires: Counter,
    /// Releases issued by this node's threads.
    pub releases: Counter,
    /// Grants issued by locks homed on this node.
    pub grants: Counter,
    /// Requests that had to queue at this node's locks.
    pub contended: Counter,
}

/// Adds queue-based locks to an underlying protocol (see module docs).
pub struct LockLayer<P> {
    inner: P,
    nodes: usize,
    locks: FxHashMap<u64, LockState>,
    /// The local thread suspended in `ACQUIRE`, with the lock id.
    waiting: Option<(ThreadId, u64)>,
    stats: LockStats,
}

impl<P: Protocol> LockLayer<P> {
    /// Wraps `inner`, adding the lock operations.
    pub fn new(inner: P, nodes: usize) -> Self {
        LockLayer {
            inner,
            nodes,
            locks: FxHashMap::default(),
            waiting: None,
            stats: LockStats::default(),
        }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Lock statistics.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    fn home_of(&self, lock: u64) -> NodeId {
        NodeId::new((lock % self.nodes as u64) as u16)
    }

    fn grant(&mut self, ctx: &mut dyn TempestCtx, lock: u64, to: NodeId) {
        self.stats.grants.inc();
        ctx.send(to, VirtualNet::Response, LOCK_GRANT, Payload::args(&[lock]));
    }

    fn on_lock_req(&mut self, ctx: &mut dyn TempestCtx, msg: &Message) {
        let lock = msg.arg(0);
        ctx.charge(LOCK_HANDLER_INSTR);
        let state = self.locks.entry(lock).or_default();
        if state.holder.is_none() {
            state.holder = Some(msg.src);
            self.grant(ctx, lock, msg.src);
        } else {
            self.stats.contended.inc();
            state.queue.push_back(msg.src);
        }
    }

    fn on_lock_rel(&mut self, ctx: &mut dyn TempestCtx, msg: &Message) {
        let lock = msg.arg(0);
        ctx.charge(LOCK_HANDLER_INSTR);
        let state = self
            .locks
            .get_mut(&lock)
            .unwrap_or_else(|| panic!("release of unknown lock {lock}"));
        assert_eq!(
            state.holder,
            Some(msg.src),
            "lock {lock} released by a node that does not hold it"
        );
        state.holder = state.queue.pop_front();
        if let Some(next) = state.holder {
            self.grant(ctx, lock, next);
        }
    }

    fn on_grant(&mut self, ctx: &mut dyn TempestCtx, msg: &Message) {
        let lock = msg.arg(0);
        ctx.charge(LOCK_HANDLER_INSTR);
        let (thread, waiting_lock) = self
            .waiting
            .take()
            .expect("LOCK_GRANT with no thread waiting");
        assert_eq!(waiting_lock, lock, "grant for a different lock");
        self.stats.acquires.inc();
        ctx.resume(thread);
    }
}

impl<P: Protocol> Protocol for LockLayer<P> {
    fn init(&mut self, ctx: &mut dyn TempestCtx) {
        self.inner.init(ctx);
    }

    fn on_page_fault(&mut self, ctx: &mut dyn TempestCtx, fault: PageFault) {
        self.inner.on_page_fault(ctx, fault);
    }

    fn on_block_fault(&mut self, ctx: &mut dyn TempestCtx, fault: BlockFault) {
        self.inner.on_block_fault(ctx, fault);
    }

    fn on_message(&mut self, ctx: &mut dyn TempestCtx, msg: Message) {
        match msg.handler {
            LOCK_REQ => self.on_lock_req(ctx, &msg),
            LOCK_GRANT => self.on_grant(ctx, &msg),
            LOCK_REL => self.on_lock_rel(ctx, &msg),
            _ => self.inner.on_message(ctx, msg),
        }
    }

    fn on_user_call(&mut self, ctx: &mut dyn TempestCtx, thread: ThreadId, call: UserCall) {
        match call.op {
            ACQUIRE_OP => {
                assert!(self.waiting.is_none(), "one acquire at a time per thread");
                ctx.charge(LOCK_HANDLER_INSTR);
                self.waiting = Some((thread, call.arg));
                let home = self.home_of(call.arg);
                ctx.send(
                    home,
                    VirtualNet::Request,
                    LOCK_REQ,
                    Payload::args(&[call.arg]),
                );
            }
            RELEASE_OP => {
                ctx.charge(LOCK_HANDLER_INSTR);
                self.stats.releases.inc();
                let home = self.home_of(call.arg);
                ctx.send(
                    home,
                    VirtualNet::Request,
                    LOCK_REL,
                    Payload::args(&[call.arg]),
                );
                // Release is asynchronous: the caller continues at once.
                ctx.resume(thread);
            }
            _ => self.inner.on_user_call(ctx, thread, call),
        }
    }

    fn name(&self) -> &'static str {
        "locks"
    }

    fn report(&self, report: &mut Report) {
        self.inner.report(report);
        report.push_count("lock.acquires", self.stats.acquires.get());
        report.push_count("lock.releases", self.stats.releases.get());
        report.push_count("lock.grants", self.stats.grants.get());
        report.push_count("lock.contended", self.stats.contended.get());
    }
}
