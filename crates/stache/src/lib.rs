//! **Stache** — user-level transparent shared memory on Tempest
//! (paper Section 3), plus the custom EM3D delayed-update protocol
//! (paper Section 4).
//!
//! Stache manages part of each node's local memory as a large,
//! fully-associative cache for remote data — a software
//! "level-three cache" reminiscent of COMA machines, but built entirely
//! from the Tempest mechanisms:
//!
//! - shared data is allocated at page granularity on *home* nodes;
//! - a remote node's first touch of a shared page takes a **page fault**;
//!   the handler allocates a local *stache page*, maps it at the shared
//!   address with all block tags `Invalid`, and restarts the access;
//! - the restarted access takes a **block access fault**; the handler
//!   sends a request to the home node and terminates;
//! - the home's **message handler** performs the coherence actions
//!   (invalidation, recall) and returns the data; the reply handler
//!   installs it with a force-write, upgrades the tag, and resumes the
//!   thread. Subsequent accesses run at full hardware speed.
//!
//! Coherence is a software LimitLESS-style invalidation protocol
//! ([`dir`]): each home block has 64 bits of directory state — two bytes
//! of state plus six one-byte sharer pointers, falling back to a bit
//! vector on overflow. Page replacement is FIFO ([`stache`]).
//!
//! The [`custom`] module shows the paper's real payoff: a protocol whose
//! *semantics* are customized per application. For EM3D's static
//! bipartite graph it replaces invalidation with **delayed updates**: home
//! nodes track outstanding copies and, at an explicit phase boundary,
//! push only the modified values — no invalidations, no acknowledgments,
//! and a fuzzy barrier implemented by counting expected updates.

pub mod custom;
pub mod dir;
pub mod stache;
pub mod sync;
pub mod transport;

pub use custom::{DelayedUpdateProtocol, Em3dUpdateProtocol};
pub use stache::{vn_policy, StacheProtocol};
pub use sync::LockLayer;
pub use transport::{reliable_vn_policy, Reliable, ReliableConfig, RelStats, REL_ACK};
