//! Machine-level tests of Typhoon with minimal protocols: page-fault
//! mapping, barrier synchronization, active-message round trips, bulk
//! transfer, and determinism.

use tt_base::addr::PAGE_BYTES;
use tt_base::workload::{Layout, Op, Placement, Region, Workload, SHARED_SEGMENT_BASE};
use tt_base::{Cycles, NodeId, SystemConfig, VAddr};
use tt_mem::Tag;
use tt_net::{Payload, VirtualNet};
use tt_tempest::{
    BlockFault, BulkRequest, HandlerId, Message, PageFault, Protocol, TempestCtx, ThreadId,
    UserCall,
};
use tt_typhoon::TyphoonMachine;

/// A workload from pre-built per-cpu op scripts.
struct Script {
    layout: Layout,
    per_cpu: Vec<Option<Vec<Op>>>,
}

impl Script {
    fn new(nodes: usize, layout: Layout) -> Self {
        Script {
            layout,
            per_cpu: vec![Some(Vec::new()); nodes],
        }
    }

    fn set(&mut self, cpu: usize, ops: Vec<Op>) {
        self.per_cpu[cpu] = Some(ops);
    }
}

impl Workload for Script {
    fn name(&self) -> &'static str {
        "script"
    }
    fn layout(&self) -> Layout {
        self.layout.clone()
    }
    fn next_chunk(&mut self, cpu: NodeId) -> Option<Vec<Op>> {
        self.per_cpu[cpu.index()].take()
    }
}

/// Maps any faulting page locally with ReadWrite tags: private per-node
/// memory, no coherence. Good enough to exercise the CPU/NP fault path.
#[derive(Default)]
struct LocalAlloc;

impl Protocol for LocalAlloc {
    fn on_page_fault(&mut self, ctx: &mut dyn TempestCtx, fault: PageFault) {
        ctx.charge(50);
        let ppn = ctx.alloc_page();
        ctx.map_page(fault.addr.page(), ppn).unwrap();
        ctx.set_page_tags(fault.addr.page(), Tag::ReadWrite);
        ctx.resume(fault.thread);
    }
    fn on_block_fault(&mut self, _ctx: &mut dyn TempestCtx, fault: BlockFault) {
        panic!("unexpected block fault at {}", fault.addr);
    }
    fn on_message(&mut self, _ctx: &mut dyn TempestCtx, msg: Message) {
        panic!("unexpected message {:?}", msg.handler);
    }
}

fn shared(addr_off: u64) -> VAddr {
    VAddr::new(SHARED_SEGMENT_BASE + addr_off)
}

fn empty_layout() -> Layout {
    Layout::new()
}

fn cfg(nodes: usize) -> SystemConfig {
    let mut c = SystemConfig::test_config(nodes);
    c.verify_values = true;
    c
}

#[test]
fn single_node_write_then_read_round_trips() {
    let mut script = Script::new(1, empty_layout());
    script.set(
        0,
        vec![
            Op::Write {
                addr: shared(0),
                value: 0xABCD,
            },
            Op::Read {
                addr: shared(0),
                expect: Some(0xABCD),
            },
            Op::Compute(10),
        ],
    );
    let mut m = TyphoonMachine::new(cfg(1), Box::new(script), &|_, _, _| {
        Box::new(LocalAlloc)
    });
    let result = m.run();
    assert!(result.cycles > Cycles::new(10));
    assert_eq!(result.report.get("cpu.page_faults"), Some(1.0));
    assert_eq!(result.report.get("cpu.writes"), Some(1.0));
    assert_eq!(result.report.get("cpu.reads"), Some(1.0));
}

#[test]
fn barrier_synchronizes_all_nodes() {
    let nodes = 4;
    let mut script = Script::new(nodes, empty_layout());
    // Node 0 computes a long time before the barrier; all others arrive
    // immediately. Everyone then computes 5 more cycles.
    for n in 0..nodes {
        let pre = if n == 0 { 10_000 } else { 1 };
        script.set(
            n,
            vec![Op::Compute(pre), Op::Barrier, Op::Compute(5)],
        );
    }
    let mut m = TyphoonMachine::new(cfg(nodes), Box::new(script), &|_, _, _| {
        Box::new(LocalAlloc)
    });
    let result = m.run();
    // All nodes finish just after the slowest + barrier latency.
    assert!(result.cycles >= Cycles::new(10_000 + 11 + 5));
    assert!(result.cycles < Cycles::new(10_100));
    assert_eq!(result.report.get("machine.barriers"), Some(1.0));
    // The fast nodes waited for the slow one.
    let wait = result.report.get("cpu.barrier_wait_cycles").unwrap();
    assert!(wait > 3.0 * 9_000.0, "barrier wait {wait}");
}

/// A ping protocol: a user call on node 0 sends a request to node 1; the
/// handler there replies; the reply handler resumes the caller.
#[derive(Default)]
struct Ping {
    node: u16,
    waiting: Option<ThreadId>,
    pings_served: u64,
}

const PING: HandlerId = HandlerId(1);
const PONG: HandlerId = HandlerId(2);

impl Protocol for Ping {
    fn on_page_fault(&mut self, ctx: &mut dyn TempestCtx, fault: PageFault) {
        let ppn = ctx.alloc_page();
        ctx.map_page(fault.addr.page(), ppn).unwrap();
        ctx.set_page_tags(fault.addr.page(), Tag::ReadWrite);
        ctx.resume(fault.thread);
    }
    fn on_block_fault(&mut self, _ctx: &mut dyn TempestCtx, _fault: BlockFault) {
        unreachable!()
    }
    fn on_message(&mut self, ctx: &mut dyn TempestCtx, msg: Message) {
        match msg.handler {
            PING => {
                self.pings_served += 1;
                ctx.charge(10);
                ctx.send(msg.src, VirtualNet::Response, PONG, Payload::args(&[]));
            }
            PONG => {
                ctx.charge(5);
                let t = self.waiting.take().expect("a thread is waiting");
                ctx.resume(t);
            }
            other => panic!("unexpected handler {other:?}"),
        }
    }
    fn on_user_call(&mut self, ctx: &mut dyn TempestCtx, thread: ThreadId, call: UserCall) {
        assert_eq!(self.node, 0, "only node 0 pings");
        assert_eq!(call.op, 42);
        self.waiting = Some(thread);
        ctx.charge(8);
        ctx.send(
            NodeId::new(1),
            VirtualNet::Request,
            PING,
            Payload::args(&[call.arg]),
        );
    }
}

#[test]
fn user_call_message_round_trip() {
    let nodes = 2;
    let mut script = Script::new(nodes, empty_layout());
    script.set(0, vec![Op::UserCall { op: 42, arg: 7 }, Op::Compute(1)]);
    script.set(1, vec![Op::Compute(1)]);
    let mut m = TyphoonMachine::new(cfg(nodes), Box::new(script), &|id, _, _| {
        Box::new(Ping {
            node: id.raw(),
            ..Ping::default()
        })
    });
    let result = m.run();
    // Round trip: >= 2 network latencies plus handler costs.
    assert!(result.cycles >= Cycles::new(2 * 11 + 10));
    assert_eq!(result.report.get("net.packets"), Some(2.0));
    assert!(result.report.get("cpu.call_stall_cycles").unwrap() >= 22.0);
}

/// Exercises the bulk-transfer engine: node 0 pushes a buffer to node 1
/// and both sides get completion notifications.
#[derive(Default)]
struct Bulk {
    node: u16,
    waiting: Option<ThreadId>,
    done_notifications: u64,
}

const SRC_DONE: HandlerId = HandlerId(3);
const DST_DONE: HandlerId = HandlerId(4);

impl Protocol for Bulk {
    fn on_page_fault(&mut self, ctx: &mut dyn TempestCtx, fault: PageFault) {
        let ppn = ctx.alloc_page();
        ctx.map_page(fault.addr.page(), ppn).unwrap();
        ctx.set_page_tags(fault.addr.page(), Tag::ReadWrite);
        ctx.resume(fault.thread);
    }
    fn on_block_fault(&mut self, _ctx: &mut dyn TempestCtx, _f: BlockFault) {
        unreachable!()
    }
    fn on_message(&mut self, ctx: &mut dyn TempestCtx, msg: Message) {
        match msg.handler {
            SRC_DONE => {
                assert_eq!(self.node, 0);
                self.done_notifications += 1;
                let t = self.waiting.take().expect("caller waiting");
                ctx.resume(t);
            }
            DST_DONE => {
                assert_eq!(self.node, 1);
                self.done_notifications += 1;
                assert_eq!(msg.arg(2), 256, "transfer length");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    fn on_user_call(&mut self, ctx: &mut dyn TempestCtx, thread: ThreadId, _call: UserCall) {
        self.waiting = Some(thread);
        ctx.bulk_transfer(BulkRequest {
            dst: NodeId::new(1),
            src_addr: VAddr::new(SHARED_SEGMENT_BASE),
            dst_addr: VAddr::new(SHARED_SEGMENT_BASE + PAGE_BYTES as u64),
            bytes: 256,
            notify_src: Some(SRC_DONE),
            notify_dst: Some(DST_DONE),
        });
    }
    fn report(&self, report: &mut tt_base::stats::Report) {
        report.push_count("bulk.done_notifications", self.done_notifications);
    }
}

#[test]
fn bulk_transfer_moves_data_and_notifies() {
    let nodes = 2;
    let mut script = Script::new(nodes, empty_layout());
    // Node 0 writes a pattern, transfers it, then node 1 reads it after a
    // barrier. Node 1 pre-touches its destination page so it is mapped.
    let mut ops0 = Vec::new();
    for w in 0..32u64 {
        ops0.push(Op::Write {
            addr: VAddr::new(SHARED_SEGMENT_BASE + 8 * w),
            value: 0x100 + w,
        });
    }
    ops0.push(Op::UserCall { op: 1, arg: 0 });
    ops0.push(Op::Barrier);
    script.set(0, ops0);
    let mut ops1 = vec![Op::Write {
        addr: VAddr::new(SHARED_SEGMENT_BASE + PAGE_BYTES as u64 + 8 * 63),
        value: 0,
    }];
    ops1.push(Op::Barrier);
    for w in 0..32u64 {
        ops1.push(Op::Read {
            addr: VAddr::new(SHARED_SEGMENT_BASE + PAGE_BYTES as u64 + 8 * w),
            expect: Some(0x100 + w),
        });
    }
    script.set(1, ops1);

    let mut m = TyphoonMachine::new(cfg(nodes), Box::new(script), &|id, _, _| {
        Box::new(Bulk {
            node: id.raw(),
            ..Bulk::default()
        })
    });
    let result = m.run();
    assert_eq!(result.report.get("bulk.done_notifications"), Some(2.0));
    // 256 bytes = 4 packets of 64.
    assert_eq!(result.report.get("np.bulk_packets"), Some(4.0));
}

/// Every node pings its ring successor on a user call; the handler
/// replies and the reply resumes the caller. Unlike [`Ping`], this keeps
/// cross-node request/response traffic flowing between *all* node pairs,
/// so any shard split sees messages crossing its boundary.
#[derive(Default)]
struct RingPing {
    node: u16,
    nodes: u16,
    waiting: Option<ThreadId>,
}

impl Protocol for RingPing {
    fn on_page_fault(&mut self, ctx: &mut dyn TempestCtx, fault: PageFault) {
        ctx.charge(30);
        let ppn = ctx.alloc_page();
        ctx.map_page(fault.addr.page(), ppn).unwrap();
        ctx.set_page_tags(fault.addr.page(), Tag::ReadWrite);
        ctx.resume(fault.thread);
    }
    fn on_block_fault(&mut self, _ctx: &mut dyn TempestCtx, _fault: BlockFault) {
        unreachable!()
    }
    fn on_message(&mut self, ctx: &mut dyn TempestCtx, msg: Message) {
        match msg.handler {
            PING => {
                ctx.charge(10);
                ctx.send(msg.src, VirtualNet::Response, PONG, Payload::args(&[]));
            }
            PONG => {
                ctx.charge(5);
                let t = self.waiting.take().expect("a thread is waiting");
                ctx.resume(t);
            }
            other => panic!("unexpected handler {other:?}"),
        }
    }
    fn on_user_call(&mut self, ctx: &mut dyn TempestCtx, thread: ThreadId, call: UserCall) {
        self.waiting = Some(thread);
        ctx.charge(8);
        ctx.send(
            NodeId::new((self.node + 1) % self.nodes),
            VirtualNet::Request,
            PING,
            Payload::args(&[call.arg]),
        );
    }
}

/// The tentpole acceptance check at machine level: one workload mixing
/// page faults, barriers, and all-pairs-adjacent cross-node messaging
/// must produce byte-identical cycles and statistics at every
/// `sim_threads` value, including counts that do not divide the node
/// count evenly.
#[test]
fn parallel_simulation_is_bit_identical_to_sequential() {
    let run = |sim_threads: usize, tie_shuffle: Option<u64>| {
        let nodes = 6;
        let mut script = Script::new(nodes, empty_layout());
        for n in 0..nodes {
            let mut ops = Vec::new();
            for i in 0..40u64 {
                ops.push(Op::Compute(1 + (n as u32) * 3));
                ops.push(Op::Write {
                    addr: shared((n as u64) * 65536 + 8 * i),
                    value: i,
                });
                ops.push(Op::UserCall { op: 1, arg: i });
                if i % 8 == 7 {
                    ops.push(Op::Barrier);
                }
            }
            ops.push(Op::Barrier);
            script.set(n, ops);
        }
        let mut cfg = cfg(nodes);
        cfg.sim_threads = sim_threads;
        let mut m = TyphoonMachine::new(cfg, Box::new(script), &|id, _, cfg| {
            Box::new(RingPing {
                node: id.raw(),
                nodes: cfg.nodes as u16,
                waiting: None,
            })
        });
        if let Some(seed) = tie_shuffle {
            m.set_tie_shuffle(seed);
        }
        let result = m.run();
        let rows: Vec<(String, f64)> = result
            .report
            .iter()
            .map(|r| (r.name.clone(), r.value))
            .collect();
        (result.cycles, rows)
    };
    for tie_shuffle in [None, Some(0xDEAD_BEEF)] {
        let sequential = run(1, tie_shuffle);
        for threads in [2, 3, 4, 6, 8] {
            let parallel = run(threads, tie_shuffle);
            assert_eq!(
                sequential, parallel,
                "sim_threads={threads} diverged (tie_shuffle={tie_shuffle:?})"
            );
        }
    }
}

#[test]
fn same_seed_is_bit_deterministic() {
    let run = || {
        let nodes = 2;
        let mut script = Script::new(nodes, empty_layout());
        for n in 0..nodes {
            let mut ops = Vec::new();
            for i in 0..200u64 {
                ops.push(Op::Write {
                    addr: shared((n as u64) * 65536 + 8 * i),
                    value: i,
                });
                ops.push(Op::Compute(3));
            }
            ops.push(Op::Barrier);
            script.set(n, ops);
        }
        let mut m = TyphoonMachine::new(cfg(nodes), Box::new(script), &|_, _, _| {
            Box::new(LocalAlloc)
        });
        m.run().cycles
    };
    assert_eq!(run(), run());
}

#[test]
fn layout_is_visible_to_protocol_factory() {
    let mut layout = Layout::new();
    layout.add(Region {
        base: VAddr::new(SHARED_SEGMENT_BASE),
        bytes: 4 * PAGE_BYTES,
        placement: Placement::Cyclic,
        mode: 0,
    });
    let mut script = Script::new(2, layout);
    script.set(0, vec![Op::Compute(1)]);
    script.set(1, vec![Op::Compute(1)]);
    // The factory can inspect the layout (this is how Stache gets its
    // distributed home map).
    let mut factory_pages = std::sync::atomic::AtomicUsize::new(0);
    let mut m = TyphoonMachine::new(cfg(2), Box::new(script), &|_, layout, _| {
        factory_pages.store(
            layout.total_pages(),
            std::sync::atomic::Ordering::Relaxed,
        );
        Box::new(LocalAlloc)
    });
    let saw_pages = m.layout().total_pages();
    let _ = m.run();
    assert_eq!(saw_pages, 4);
    assert_eq!(*factory_pages.get_mut(), 4);
}

#[test]
fn software_tempest_is_correct_but_slower() {
    // NpMode::OnCpu (the paper's software-Tempest direction): handlers
    // interrupt the main processor and fault detection pays a software
    // trap cost. Results must be identical, just slower.
    let build = |mode| {
        let mut script = Script::new(2, empty_layout());
        let mut ops = Vec::new();
        for i in 0..100u64 {
            ops.push(Op::Write { addr: shared(8 * i), value: i });
            ops.push(Op::Compute(10),);
        }
        ops.push(Op::Barrier);
        script.set(0, ops);
        script.set(1, vec![Op::Compute(1), Op::Barrier]);
        let mut cfg = cfg(2);
        cfg.typhoon.np_mode = mode;
        let mut m = TyphoonMachine::new(cfg, Box::new(script), &|_, _, _| {
            Box::new(LocalAlloc)
        });
        m.run()
    };
    let dedicated = build(tt_base::config::NpMode::Dedicated);
    let software = build(tt_base::config::NpMode::OnCpu);
    // Same work performed...
    assert_eq!(
        dedicated.report.get("cpu.writes"),
        software.report.get("cpu.writes")
    );
    // ...but the software version pays the trap costs.
    assert!(
        software.cycles > dedicated.cycles,
        "software {} !> dedicated {}",
        software.cycles,
        dedicated.cycles
    );
}

#[test]
fn tracer_records_the_fault_handler_sequence() {
    use std::sync::{Arc, Mutex};
    use tt_typhoon::trace::{HandlerKind, TraceEvent, TraceRecord};

    let events: Arc<Mutex<Vec<TraceRecord>>> = Arc::default();
    let sink = events.clone();

    let mut script = Script::new(1, empty_layout());
    script.set(
        0,
        vec![Op::Write {
            addr: shared(0),
            value: 1,
        }],
    );
    let mut m = TyphoonMachine::new(cfg(1), Box::new(script), &|_, _, _| {
        Box::new(LocalAlloc)
    });
    m.set_tracer(Box::new(move |r: TraceRecord| {
        sink.lock().unwrap().push(r)
    }));
    let _ = m.run();

    let events = events.lock().unwrap();
    // A page fault, then its handler dispatch, in time order.
    assert!(matches!(events[0].event, TraceEvent::PageFault { .. }));
    assert!(matches!(
        events[1].event,
        TraceEvent::HandlerStart {
            what: HandlerKind::PageFault,
            ..
        }
    ));
    assert!(events[0].at <= events[1].at);
}
