//! Failure injection: deliberately broken protocols must be *caught* by
//! the machine's invariants — value verification catches coherence bugs,
//! and the deadlock detector catches lost resumes. These tests give
//! confidence that the green runs elsewhere in the suite actually prove
//! something.

use tt_base::addr::PAGE_BYTES;
use tt_base::workload::{Layout, Op, Placement, Region, ScriptWorkload, SHARED_SEGMENT_BASE};
use tt_base::{NodeId, SystemConfig, VAddr};
use tt_mem::{PageMeta, Tag};
use tt_net::{Payload, VirtualNet};
use tt_tempest::{
    BlockFault, HandlerId, Message, PageFault, Protocol, TempestCtx,
};
use tt_typhoon::TyphoonMachine;

const GET: HandlerId = HandlerId(0x60);
const PUT: HandlerId = HandlerId(0x61);

/// A broken "coherence" protocol: it hands out writable copies of the
/// same block to everyone and never invalidates anything. Any two nodes
/// writing then reading the same word will observe each other's lost
/// updates.
struct NeverInvalidate {
    node: NodeId,
    home_map: Vec<(tt_base::addr::Vpn, NodeId)>,
    pending: Option<tt_tempest::ThreadId>,
}

impl NeverInvalidate {
    fn new(node: NodeId, layout: &Layout, cfg: &SystemConfig) -> Self {
        NeverInvalidate {
            node,
            home_map: layout.pages(cfg.nodes).map(|(v, h, _)| (v, h)).collect(),
            pending: None,
        }
    }

    fn home_of(&self, vpn: tt_base::addr::Vpn) -> NodeId {
        self.home_map
            .iter()
            .find(|(v, _)| *v == vpn)
            .map(|(_, h)| *h)
            .expect("page in layout")
    }
}

impl Protocol for NeverInvalidate {
    fn init(&mut self, ctx: &mut dyn TempestCtx) {
        let mine: Vec<_> = self
            .home_map
            .iter()
            .filter(|(_, h)| *h == self.node)
            .map(|(v, _)| *v)
            .collect();
        for vpn in mine {
            let ppn = ctx.alloc_page();
            ctx.map_page(vpn, ppn).unwrap();
            ctx.set_page_tags(vpn, Tag::ReadWrite);
            ctx.set_page_meta(
                vpn,
                PageMeta {
                    vpn: Some(vpn),
                    mode: 0,
                    user: [self.node.raw() as u64, 0],
                },
            );
        }
    }

    fn on_page_fault(&mut self, ctx: &mut dyn TempestCtx, fault: PageFault) {
        let vpn = fault.addr.page();
        let ppn = ctx.alloc_page();
        ctx.map_page(vpn, ppn).unwrap();
        ctx.set_page_tags(vpn, Tag::Invalid);
        ctx.set_page_meta(
            vpn,
            PageMeta {
                vpn: Some(vpn),
                mode: 0,
                user: [self.home_of(vpn).raw() as u64, 0],
            },
        );
        ctx.resume(fault.thread);
    }

    fn on_block_fault(&mut self, ctx: &mut dyn TempestCtx, fault: BlockFault) {
        let home = NodeId::new(fault.meta.user[0] as u16);
        self.pending = Some(fault.thread);
        ctx.send(
            home,
            VirtualNet::Request,
            GET,
            Payload::args(vec![fault.addr.block_base().raw()]),
        );
    }

    fn on_message(&mut self, ctx: &mut dyn TempestCtx, msg: Message) {
        match msg.handler {
            GET => {
                // BUG: gives a writable copy without tracking or
                // invalidating anyone.
                let addr = VAddr::new(msg.arg(0));
                let data = ctx.force_read_block(addr);
                ctx.send(
                    msg.src,
                    VirtualNet::Response,
                    PUT,
                    Payload::with_block(vec![addr.raw()], data),
                );
            }
            PUT => {
                let addr = VAddr::new(msg.arg(0));
                let data = msg.payload.block();
                ctx.force_write_block(addr, &data);
                ctx.set_tag(addr, Tag::ReadWrite);
                ctx.resume(self.pending.take().expect("pending fault"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

/// A protocol that takes the fault and never resumes the thread.
struct LoseResume;

impl Protocol for LoseResume {
    fn on_page_fault(&mut self, _ctx: &mut dyn TempestCtx, _fault: PageFault) {
        // BUG: thread left suspended forever.
    }
    fn on_block_fault(&mut self, _ctx: &mut dyn TempestCtx, _fault: BlockFault) {}
    fn on_message(&mut self, _ctx: &mut dyn TempestCtx, _msg: Message) {}
}

fn one_page_layout() -> Layout {
    let mut l = Layout::new();
    l.add(Region {
        base: VAddr::new(SHARED_SEGMENT_BASE),
        bytes: PAGE_BYTES,
        placement: Placement::PerPage(vec![NodeId::new(0)]),
        mode: 0,
    });
    l
}

#[test]
#[should_panic(expected = "coherence violation")]
fn verification_catches_a_protocol_that_never_invalidates() {
    let word = VAddr::new(SHARED_SEGMENT_BASE);
    let mut w = ScriptWorkload::new(2).with_layout(one_page_layout());
    // Node 1 caches the block, node 0 (home) updates it, node 1 reads
    // again and must see the new value — but the broken protocol never
    // invalidated node 1's stale writable copy.
    w.set(
        0,
        vec![
            Op::Write { addr: word, value: 1 },
            Op::Barrier,
            Op::Barrier,
            Op::Write { addr: word, value: 2 },
            Op::Barrier,
        ],
    );
    w.set(
        1,
        vec![
            Op::Barrier,
            Op::Read { addr: word, expect: Some(1) },
            Op::Barrier,
            Op::Barrier,
            Op::Read { addr: word, expect: Some(2) },
        ],
    );
    let mut m = TyphoonMachine::new(
        SystemConfig::test_config(2),
        Box::new(w),
        &|id, layout, cfg| Box::new(NeverInvalidate::new(id, layout, cfg)),
    );
    let _ = m.run();
}

#[test]
#[should_panic(expected = "deadlocked")]
fn deadlock_detector_catches_a_lost_resume() {
    let mut w = ScriptWorkload::new(1).with_layout(one_page_layout());
    w.set(
        0,
        vec![Op::Read {
            addr: VAddr::new(SHARED_SEGMENT_BASE + PAGE_BYTES as u64 * 10),
            expect: None,
        }],
    );
    let mut m = TyphoonMachine::new(
        SystemConfig::test_config(1),
        Box::new(w),
        &|_, _, _| Box::new(LoseResume),
    );
    let _ = m.run();
}

#[test]
#[should_panic(expected = "deadlocked")]
fn mismatched_barrier_counts_are_detected() {
    // Node 1 runs one barrier and finishes; node 0 waits at a second
    // barrier that can never release: the run must end in the deadlock
    // detector, not hang.
    let mut w = ScriptWorkload::new(2).with_layout(one_page_layout());
    w.set(0, vec![Op::Barrier, Op::Barrier]);
    w.set(1, vec![Op::Barrier]);
    let mut m = TyphoonMachine::new(
        SystemConfig::test_config(2),
        Box::new(w),
        &|_, _, _| Box::new(LoseResume),
    );
    let _ = m.run();
}
