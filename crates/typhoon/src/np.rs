//! The network interface processor (NP) model (paper Section 5, Figure 2).
//!
//! The NP is a previous-generation integer core tightly coupled to the
//! network interface, with its own instruction/data caches, a forward TLB
//! (for handler accesses by virtual address), and the reverse TLB the bus
//! monitor uses for tag checks. Scheduling is a hardware-assisted,
//! non-preemptive dispatch loop: once a handler starts it runs to
//! completion, so handlers never synchronize with each other.
//!
//! Dispatch priority (Section 5.1): the response virtual network is
//! serviced first (so request handlers cannot starve response handlers,
//! keeping request/response protocols deadlock-free), then block-access
//! faults, then the request network, then explicit application calls.

use std::collections::VecDeque;

use tt_base::addr::{Ppn, Vpn};
use tt_base::config::SystemConfig;
use tt_base::stats::Counter;
use tt_base::{Cycles, DetRng};
use tt_mem::{CacheModel, FifoTlb};
use tt_net::VirtualNet;
use tt_tempest::{BlockFault, Message, PageFault, ThreadId, UserCall};

/// One unit of work awaiting the NP's dispatch loop.
#[derive(Clone, Debug)]
pub enum NpWork {
    /// An incoming active message.
    Message(Message),
    /// A page fault deposited by the CPU.
    PageFault(PageFault),
    /// A block access fault deposited by the bus monitor (BAF buffer).
    BlockFault(BlockFault),
    /// An explicit application call into the protocol.
    UserCall(ThreadId, UserCall),
    /// A protocol timer armed via `TempestCtx::set_timer` firing.
    Timer(u64),
}

/// NP statistics.
#[derive(Clone, Debug, Default)]
pub struct NpStats {
    /// Handlers dispatched.
    pub handlers: Counter,
    /// NP instructions charged by handlers.
    pub instructions: Counter,
    /// Messages received (both nets).
    pub messages: Counter,
    /// Block faults serviced.
    pub block_faults: Counter,
    /// Page faults serviced.
    pub page_faults: Counter,
    /// User calls serviced.
    pub user_calls: Counter,
    /// Cycles the NP spent executing handlers.
    pub busy_cycles: Counter,
    /// Bulk-transfer packets injected.
    pub bulk_packets: Counter,
}

/// The state of one node's network interface processor.
#[derive(Debug)]
pub struct NpState {
    /// NP data cache (Table 2: 16 KB, 2-way), used for protocol data
    /// structures; block data moves through the separate block-transfer
    /// buffer and does not pollute it.
    pub dcache: CacheModel,
    /// NP forward TLB for handler accesses by virtual address.
    pub tlb: FifoTlb<Vpn>,
    /// Reverse TLB: physical page -> tag/metadata residence, consulted by
    /// the bus monitor on every CPU bus transaction.
    pub rtlb: FifoTlb<Ppn>,
    /// High-priority queue: messages from the response network.
    pub response_q: VecDeque<Message>,
    /// Fault records (the BAF buffer plus page faults).
    pub fault_q: VecDeque<NpWork>,
    /// Low-priority queue: messages from the request network.
    pub request_q: VecDeque<Message>,
    /// Protocol timer firings; serviced after faults but before fresh
    /// requests, so retransmission never starves behind request traffic.
    pub timer_q: VecDeque<u64>,
    /// Application calls.
    pub call_q: VecDeque<(ThreadId, UserCall)>,
    /// The NP is executing a handler until this time.
    pub busy_until: Cycles,
    /// Whether a dispatch event is already scheduled (de-duplication).
    pub dispatch_pending: bool,
    /// Statistics.
    pub stats: NpStats,
}

impl NpState {
    /// Creates an NP with the configured caches and TLBs.
    pub fn new(cfg: &SystemConfig, rng: DetRng) -> Self {
        NpState {
            dcache: CacheModel::new(
                cfg.typhoon.np_dcache_bytes,
                cfg.typhoon.np_dcache_assoc,
                tt_base::addr::BLOCK_BYTES,
                rng,
            ),
            tlb: FifoTlb::new(cfg.typhoon.np_tlb_entries),
            rtlb: FifoTlb::new(cfg.typhoon.rtlb_entries),
            response_q: VecDeque::new(),
            fault_q: VecDeque::new(),
            timer_q: VecDeque::new(),
            request_q: VecDeque::new(),
            call_q: VecDeque::new(),
            busy_until: Cycles::ZERO,
            dispatch_pending: false,
            stats: NpStats::default(),
        }
    }

    /// Enqueues a unit of work.
    pub fn enqueue(&mut self, work: NpWork) {
        match work {
            NpWork::Message(m) => {
                self.stats.messages.inc();
                match m.vn {
                    VirtualNet::Response => self.response_q.push_back(m),
                    VirtualNet::Request => self.request_q.push_back(m),
                }
            }
            NpWork::BlockFault(_) | NpWork::PageFault(_) => self.fault_q.push_back(work),
            NpWork::Timer(t) => self.timer_q.push_back(t),
            NpWork::UserCall(t, c) => self.call_q.push_back((t, c)),
        }
    }

    /// Removes the highest-priority pending work item.
    pub fn next_work(&mut self) -> Option<NpWork> {
        if let Some(m) = self.response_q.pop_front() {
            return Some(NpWork::Message(m));
        }
        if let Some(w) = self.fault_q.pop_front() {
            return Some(w);
        }
        if let Some(t) = self.timer_q.pop_front() {
            return Some(NpWork::Timer(t));
        }
        if let Some(m) = self.request_q.pop_front() {
            return Some(NpWork::Message(m));
        }
        if let Some((t, c)) = self.call_q.pop_front() {
            return Some(NpWork::UserCall(t, c));
        }
        None
    }

    /// Whether any work is pending.
    pub fn has_work(&self) -> bool {
        !self.response_q.is_empty()
            || !self.fault_q.is_empty()
            || !self.timer_q.is_empty()
            || !self.request_q.is_empty()
            || !self.call_q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_base::{NodeId, SystemConfig, VAddr};
    use tt_mem::AccessKind;
    use tt_net::Payload;
    use tt_tempest::HandlerId;

    fn np() -> NpState {
        NpState::new(&SystemConfig::default(), DetRng::new(0))
    }

    fn msg(vn: VirtualNet) -> Message {
        Message {
            src: NodeId::new(1),
            vn,
            handler: HandlerId(0),
            payload: Payload::new(),
        }
    }

    fn fault() -> NpWork {
        NpWork::PageFault(PageFault {
            thread: ThreadId(NodeId::new(0)),
            addr: VAddr::new(0),
            kind: AccessKind::Load,
        })
    }

    #[test]
    fn dispatch_priority_order() {
        let mut np = np();
        np.enqueue(NpWork::UserCall(
            ThreadId(NodeId::new(0)),
            UserCall { op: 1, arg: 0 },
        ));
        np.enqueue(NpWork::Message(msg(VirtualNet::Request)));
        np.enqueue(fault());
        np.enqueue(NpWork::Message(msg(VirtualNet::Response)));

        assert!(matches!(
            np.next_work(),
            Some(NpWork::Message(m)) if m.vn == VirtualNet::Response
        ));
        assert!(matches!(np.next_work(), Some(NpWork::PageFault(_))));
        assert!(matches!(
            np.next_work(),
            Some(NpWork::Message(m)) if m.vn == VirtualNet::Request
        ));
        assert!(matches!(np.next_work(), Some(NpWork::UserCall(..))));
        assert!(np.next_work().is_none());
        assert!(!np.has_work());
    }

    #[test]
    fn fifo_within_a_queue() {
        let mut np = np();
        let mut a = msg(VirtualNet::Request);
        a.handler = HandlerId(1);
        let mut b = msg(VirtualNet::Request);
        b.handler = HandlerId(2);
        np.enqueue(NpWork::Message(a));
        np.enqueue(NpWork::Message(b));
        assert!(matches!(
            np.next_work(),
            Some(NpWork::Message(m)) if m.handler == HandlerId(1)
        ));
        assert!(matches!(
            np.next_work(),
            Some(NpWork::Message(m)) if m.handler == HandlerId(2)
        ));
    }

    #[test]
    fn message_stat_counts_both_nets() {
        let mut np = np();
        np.enqueue(NpWork::Message(msg(VirtualNet::Request)));
        np.enqueue(NpWork::Message(msg(VirtualNet::Response)));
        assert_eq!(np.stats.messages.get(), 2);
    }
}
