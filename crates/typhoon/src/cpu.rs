//! The primary-processor model: an in-order CPU executing a workload op
//! stream through its data cache and TLB, with fine-grain tag checks
//! applied to its bus transactions.
//!
//! The CPU charges one cycle per op (the paper's approximation of one
//! cycle per instruction) plus Table 2 memory-system delays. Tag checks
//! happen exactly where Typhoon's hardware applies them: on *bus
//! transactions* (cache misses and write-upgrades), never on cache hits —
//! so a block cached before its tag was downgraded keeps hitting until
//! the NP purges it, which the `TempestCtx::set_tag` implementation does.

use tt_base::addr::{PAddr, VAddr};
use tt_base::config::SystemConfig;
use tt_base::stats::Counter;
use tt_base::workload::Op;
use tt_base::{Cycles, NodeId};
use tt_mem::cache::Probe;
use tt_mem::{AccessKind, CacheModel, FifoTlb, NodeMemory, PageTable, Tag};
use tt_tempest::{BlockFault, PageFault, ThreadId};

use crate::np::NpState;

/// Execution status of a node's computation thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpuStatus {
    /// Executing ops.
    Ready,
    /// Suspended on a page or block access fault; retries the faulting op
    /// when resumed.
    BlockedFault,
    /// Suspended inside an explicit protocol call.
    BlockedCall,
    /// Waiting at a barrier.
    AtBarrier,
    /// Program finished.
    Done,
}

/// Per-CPU statistics.
#[derive(Clone, Debug, Default)]
pub struct CpuStats {
    /// Ops executed (each charged one base cycle).
    pub ops: Counter,
    /// Tag-checked loads executed to completion.
    pub reads: Counter,
    /// Tag-checked stores executed to completion.
    pub writes: Counter,
    /// Cycles spent in `Compute` ops.
    pub compute_cycles: Counter,
    /// Cache misses satisfied locally without protocol involvement.
    pub local_misses: Counter,
    /// Write-upgrades on locally writable blocks.
    pub upgrades: Counter,
    /// Block access faults taken.
    pub block_faults: Counter,
    /// Page faults taken.
    pub page_faults: Counter,
    /// Cycles suspended on faults (fault to resume).
    pub fault_stall_cycles: Counter,
    /// Cycles waiting at barriers.
    pub barrier_wait_cycles: Counter,
    /// Cycles suspended in protocol calls.
    pub call_stall_cycles: Counter,
    /// RTLB misses observed on this CPU's bus transactions.
    pub rtlb_misses: Counter,
    /// Cycles skipped by `Op::WaitUntil` (open-loop arrival idling).
    pub idle_cycles: Counter,
}

/// The state of one node's computation thread.
#[derive(Debug)]
pub struct CpuState {
    /// This node's id.
    pub id: NodeId,
    /// The data cache (Table 2: 4-way, random replacement).
    pub cache: CacheModel,
    /// The CPU TLB (Table 2: 64-entry fully associative FIFO).
    pub tlb: FifoTlb<tt_base::addr::Vpn>,
    /// Current op chunk.
    pub chunk: Vec<Op>,
    /// Index of the next op in `chunk`.
    pub pc: usize,
    /// Local time through which this CPU has executed.
    pub clock: Cycles,
    /// Execution status.
    pub status: CpuStatus,
    /// Whether a `CpuStep` event is already scheduled (de-duplication).
    pub step_pending: bool,
    /// Time at which the current suspension began (for stall accounting).
    pub suspended_at: Cycles,
    /// Values observed by `Op::ReadRecord` loads, in program order
    /// (litmus harnesses read these back after the run).
    pub recorded: Vec<u64>,
    /// Statistics.
    pub stats: CpuStats,
}

impl CpuState {
    /// Creates a CPU with the configured cache and TLB.
    pub fn new(id: NodeId, cfg: &SystemConfig, rng: tt_base::DetRng) -> Self {
        CpuState {
            id,
            cache: CacheModel::new(
                cfg.cpu.cache_bytes,
                cfg.cpu.cache_assoc,
                tt_base::addr::BLOCK_BYTES,
                rng,
            ),
            tlb: FifoTlb::new(cfg.cpu.tlb_entries),
            chunk: Vec::new(),
            pc: 0,
            clock: Cycles::ZERO,
            status: CpuStatus::Ready,
            step_pending: false,
            suspended_at: Cycles::ZERO,
            recorded: Vec::new(),
            stats: CpuStats::default(),
        }
    }

    /// The thread handle of this CPU's computation thread.
    pub fn thread(&self) -> ThreadId {
        ThreadId(self.id)
    }
}

/// Outcome of attempting one tag-checked access.
#[derive(Clone, Debug, PartialEq)]
pub enum AccessOutcome {
    /// Access completed; `cost` cycles elapsed (including the 1-cycle op).
    Done {
        /// Total cycles the access took.
        cost: Cycles,
        /// The value loaded, for reads.
        value: Option<u64>,
    },
    /// The page is unmapped: page fault, `cost` cycles elapsed first.
    PageFault(PageFault, Cycles),
    /// The block tag forbids the access: block fault after `cost` cycles.
    BlockFault(BlockFault, Cycles),
}

/// Executes one tag-checked access against the node's memory system.
///
/// This is the heart of the Typhoon bus model: the access hits the CPU
/// cache when it can, and otherwise becomes a bus transaction that the
/// NP's RTLB checks against the block's tag. The order of charges follows
/// Table 2: base cycle, TLB miss, RTLB miss (a nacked-and-retried
/// transaction), then the local miss or the fault path.
#[allow(clippy::too_many_arguments)] // free function so the machine can split borrows
pub fn exec_access(
    cfg: &SystemConfig,
    cpu: &mut CpuState,
    np: &mut NpState,
    mem: &mut NodeMemory,
    ptable: &PageTable,
    addr: VAddr,
    kind: AccessKind,
    store_value: u64,
) -> AccessOutcome {
    let mut cost = Cycles::new(1);
    cpu.stats.ops.inc();

    // Virtual address translation.
    if !cpu.tlb.access(addr.page()) {
        cost += cfg.timing.tlb_miss;
    }
    let Some(ppn) = ptable.translate(addr.page()) else {
        cpu.stats.page_faults.inc();
        let fault = PageFault {
            thread: cpu.thread(),
            addr,
            kind,
        };
        return AccessOutcome::PageFault(fault, cost);
    };
    let paddr = PAddr::new(ppn.base().raw() + addr.page_offset());
    let block_key = paddr.raw() / tt_base::addr::BLOCK_BYTES as u64;

    let probe = cpu.cache.probe(block_key);
    let needs_bus = match (probe, kind) {
        (Probe::HitOwned, _) | (Probe::HitShared, AccessKind::Load) => false,
        (Probe::HitShared, AccessKind::Store) | (Probe::Miss, _) => true,
    };

    if needs_bus {
        // The NP snoops the transaction; its RTLB must hold the page. A
        // miss nacks the transaction while the entry is fetched (25 cy).
        if !np.rtlb.access(ppn) {
            cost += cfg.typhoon.np_tlb_miss;
            cpu.stats.rtlb_misses.inc();
        }
        let tag = mem.tag(paddr);
        let permitted = tag.permits(kind);
        if !permitted {
            cpu.stats.block_faults.inc();
            let frame = mem.frame(ppn);
            let fault = BlockFault {
                thread: cpu.thread(),
                addr,
                kind,
                tag,
                meta: frame.meta,
            };
            return AccessOutcome::BlockFault(fault, cost + cfg.typhoon.effective_fault_detect());
        }
        match probe {
            Probe::HitShared => {
                // Write-upgrade on a ReadWrite-tagged block: invalidate
                // transaction on the bus, memory grants ownership.
                debug_assert_eq!(tag, Tag::ReadWrite);
                cost += cfg.timing.local_miss;
                cpu.cache.set_owned(block_key, true);
                cpu.stats.upgrades.inc();
            }
            Probe::Miss => {
                cost += cfg.timing.local_miss;
                // ReadOnly blocks fill shared (the NP asserts the
                // "shared" line so the CPU never owns them); ReadWrite
                // blocks fill owned. Writebacks are free (Table 2).
                let owned = tag == Tag::ReadWrite;
                cpu.cache.fill(block_key, owned);
                cost += cfg.timing.local_writeback;
                cpu.stats.local_misses.inc();
            }
            Probe::HitOwned => unreachable!("owned hits do not reach the bus"),
        }
    }

    // Functional completion: values live in local memory (functionally
    // write-through; timing-wise the write buffer is perfect, Table 2).
    let value = match kind {
        AccessKind::Load => {
            cpu.stats.reads.inc();
            Some(mem.read_word(paddr))
        }
        AccessKind::Store => {
            cpu.stats.writes.inc();
            mem.write_word(paddr, store_value);
            None
        }
    };
    AccessOutcome::Done { cost, value }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_base::addr::Vpn;
    use tt_base::DetRng;
    use tt_mem::PageMeta;

    fn setup() -> (SystemConfig, CpuState, NpState, NodeMemory, PageTable) {
        let cfg = SystemConfig::test_config(2);
        let cpu = CpuState::new(NodeId::new(0), &cfg, DetRng::new(1));
        let np = NpState::new(&cfg, DetRng::new(2));
        let mut mem = NodeMemory::new();
        let mut pt = PageTable::new();
        let ppn = mem.alloc();
        pt.map(Vpn(0x10000), ppn).unwrap();
        mem.frame_mut(ppn).set_all_tags(Tag::ReadWrite);
        mem.frame_mut(ppn).meta = PageMeta {
            vpn: Some(Vpn(0x10000)),
            mode: 0,
            user: [0, 0],
        };
        (cfg, cpu, np, mem, pt)
    }

    const VA: u64 = 0x10000 * 4096;

    #[test]
    fn first_access_pays_tlb_rtlb_and_miss() {
        let (cfg, mut cpu, mut np, mut mem, pt) = setup();
        let out = exec_access(
            &cfg,
            &mut cpu,
            &mut np,
            &mut mem,
            &pt,
            VAddr::new(VA),
            AccessKind::Load,
            0,
        );
        // 1 (op) + 25 (TLB) + 25 (RTLB) + 29 (local miss) = 80
        match out {
            AccessOutcome::Done { cost, value } => {
                assert_eq!(cost, Cycles::new(80));
                assert_eq!(value, Some(0));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(cpu.stats.local_misses.get(), 1);
    }

    #[test]
    fn second_access_hits_for_one_cycle() {
        let (cfg, mut cpu, mut np, mut mem, pt) = setup();
        let a = VAddr::new(VA);
        exec_access(&cfg, &mut cpu, &mut np, &mut mem, &pt, a, AccessKind::Load, 0);
        let out = exec_access(&cfg, &mut cpu, &mut np, &mut mem, &pt, a, AccessKind::Load, 0);
        assert_eq!(
            out,
            AccessOutcome::Done {
                cost: Cycles::new(1),
                value: Some(0),
            }
        );
    }

    #[test]
    fn store_to_rw_block_fills_owned_then_hits() {
        let (cfg, mut cpu, mut np, mut mem, pt) = setup();
        let a = VAddr::new(VA + 32);
        exec_access(&cfg, &mut cpu, &mut np, &mut mem, &pt, a, AccessKind::Store, 5);
        let key = pt.translate_addr(a).unwrap().raw() / 32;
        assert_eq!(cpu.cache.peek(key), Probe::HitOwned);
        assert_eq!(mem.read_word(pt.translate_addr(a).unwrap()), 5);
        // Subsequent store hits silently.
        let out = exec_access(&cfg, &mut cpu, &mut np, &mut mem, &pt, a, AccessKind::Store, 6);
        match out {
            AccessOutcome::Done { cost, .. } => assert_eq!(cost, Cycles::new(1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn read_only_block_fills_shared_and_store_faults() {
        let (cfg, mut cpu, mut np, mut mem, pt) = setup();
        let a = VAddr::new(VA + 64);
        let pa = pt.translate_addr(a).unwrap();
        mem.set_tag(pa, Tag::ReadOnly);
        exec_access(&cfg, &mut cpu, &mut np, &mut mem, &pt, a, AccessKind::Load, 0);
        assert_eq!(cpu.cache.peek(pa.raw() / 32), Probe::HitShared);
        let out = exec_access(&cfg, &mut cpu, &mut np, &mut mem, &pt, a, AccessKind::Store, 0);
        match out {
            AccessOutcome::BlockFault(f, _) => {
                assert_eq!(f.tag, Tag::ReadOnly);
                assert!(f.kind.is_store());
            }
            other => panic!("expected block fault, got {other:?}"),
        }
        assert_eq!(cpu.stats.block_faults.get(), 1);
    }

    #[test]
    fn invalid_block_faults_on_load() {
        let (cfg, mut cpu, mut np, mut mem, pt) = setup();
        let a = VAddr::new(VA + 96);
        mem.set_tag(pt.translate_addr(a).unwrap(), Tag::Invalid);
        let out = exec_access(&cfg, &mut cpu, &mut np, &mut mem, &pt, a, AccessKind::Load, 0);
        assert!(matches!(out, AccessOutcome::BlockFault(f, _) if f.tag == Tag::Invalid));
    }

    #[test]
    fn unmapped_page_faults() {
        let (cfg, mut cpu, mut np, mut mem, pt) = setup();
        let out = exec_access(
            &cfg,
            &mut cpu,
            &mut np,
            &mut mem,
            &pt,
            VAddr::new(0x9999 * 4096),
            AccessKind::Store,
            0,
        );
        assert!(matches!(out, AccessOutcome::PageFault(..)));
        assert_eq!(cpu.stats.page_faults.get(), 1);
    }

    #[test]
    fn functional_values_flow_through_memory() {
        let (cfg, mut cpu, mut np, mut mem, pt) = setup();
        let a = VAddr::new(VA + 128);
        let pa = pt.translate_addr(a).unwrap();
        mem.write_word(pa, 77);
        let out = exec_access(&cfg, &mut cpu, &mut np, &mut mem, &pt, a, AccessKind::Load, 0);
        match out {
            AccessOutcome::Done { value, .. } => assert_eq!(value, Some(77)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
