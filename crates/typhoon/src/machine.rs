//! The Typhoon machine: nodes, events, and the simulation driver.
//!
//! The machine executes a [`Workload`]'s op streams on `nodes` simulated
//! processors, each paired with a network interface processor running one
//! instance of a user-level [`Protocol`]. See the crate docs for the
//! modeling approach.

use std::collections::HashMap;

use tt_base::addr::{VAddr, WORD_BYTES};
use tt_base::config::SystemConfig;
use tt_base::stats::Report;
use tt_base::workload::{Layout, Op, Workload};
use tt_base::{Cycles, DetRng, NodeId};
use tt_mem::{AccessKind, NodeMemory, PageTable, Tag};
use tt_net::{Network, Packet, Payload, VirtualNet};
use tt_sim::{EventHandler, EventQueue, RunLimit};
use tt_tempest::{BlockDirSnapshot, BulkRequest, HandlerId, Message, Protocol, UserCall};

use crate::cpu::{exec_access, AccessOutcome, CpuState, CpuStatus};
use crate::ctx::NodeCtx;
use crate::np::{NpState, NpWork};
use crate::trace::{HandlerKind, TraceEvent, TraceRecord, Tracer};

/// Handler-id space reserved for machine-internal packets (bulk data);
/// protocol handler ids must stay below this.
pub const MACHINE_HANDLER_BASE: u32 = 0xFFFF_FF00;
const BULK_DATA: u32 = MACHINE_HANDLER_BASE;
const BULK_DONE: u32 = MACHINE_HANDLER_BASE + 1;
const BULK_ACK: u32 = MACHINE_HANDLER_BASE + 2;
/// Sentinel for "no notify handler" in bulk-done packets.
const NO_HANDLER: u64 = u64::MAX;

/// A simulation event.
#[derive(Clone, Debug)]
pub enum Event {
    /// Run (at most a quantum of) ops on a CPU.
    CpuStep(usize),
    /// The NP's dispatch loop looks for work.
    NpDispatch(usize),
    /// Work arrives at a node's NP (faults, application calls).
    NpWork {
        /// Destination node index.
        node: usize,
        /// The work item.
        work: NpWork,
    },
    /// A network packet arrives at its destination.
    Deliver(Packet),
    /// All processors arrived; release the barrier.
    BarrierRelease {
        /// Barrier generation (for sanity checking).
        generation: u64,
    },
    /// Inject the next packet of an active bulk transfer.
    BulkInject {
        /// Source node index.
        node: usize,
        /// Transfer id.
        id: u64,
    },
}

impl Event {
    /// The node whose state handling this event touches, or `None` for
    /// events with machine-global effect. Feeds the event queue's
    /// per-node horizon tracking (`EventQueue::node_horizon`).
    pub fn target(&self) -> Option<usize> {
        match self {
            Event::CpuStep(n) | Event::NpDispatch(n) => Some(*n),
            Event::NpWork { node, .. } | Event::BulkInject { node, .. } => Some(*node),
            Event::Deliver(p) => Some(p.dst.index()),
            Event::BarrierRelease { .. } => None,
        }
    }
}

/// Schedules a machine event with its per-node target declared, keeping
/// the queue's horizon bookkeeping exact.
pub(crate) fn schedule(queue: &mut EventQueue<Event>, at: Cycles, event: Event) {
    let target = event.target();
    queue.schedule_at_for(at, target, event);
}

/// An in-progress outgoing bulk transfer.
#[derive(Clone, Debug)]
pub struct BulkState {
    /// Transfer id (unique per machine).
    pub id: u64,
    /// The original request.
    pub request: BulkRequest,
    /// Bytes injected so far.
    pub offset: usize,
}

/// One node: CPU + NP + memory + page table + active bulk transfers.
struct NodeState {
    cpu: CpuState,
    np: NpState,
    mem: NodeMemory,
    ptable: PageTable,
    bulk: Vec<BulkState>,
}

#[derive(Debug, Default)]
struct BarrierState {
    arrived: usize,
    max_arrival: Cycles,
    generation: u64,
    releases: u64,
}

/// The result of a completed simulation.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Total execution time (when the last processor finished).
    pub cycles: Cycles,
    /// Aggregated machine, network, and protocol statistics.
    pub report: Report,
}

/// The Typhoon machine (see crate docs).
pub struct TyphoonMachine {
    cfg: SystemConfig,
    quantum: Cycles,
    nodes: Vec<NodeState>,
    protocols: Vec<Option<Box<dyn Protocol>>>,
    network: Network,
    barrier: BarrierState,
    workload: Box<dyn Workload>,
    layout: Layout,
    done: Vec<Option<Cycles>>,
    bulk_seq: u64,
    tracer: Option<Box<dyn Tracer>>,
    /// Seed for same-cycle tie-shuffling, applied to the event queue at
    /// `run` time (a `tt-check` legal-nondeterminism knob).
    tie_shuffle: Option<u64>,
}

impl TyphoonMachine {
    /// Builds a machine: one CPU/NP pair per node, a fresh protocol
    /// instance per node from `protocol`, and the given workload.
    ///
    /// The factory receives the node id and the workload's layout — the
    /// moral equivalent of the paper's "distributed mapping table" being
    /// known to the run-time library on every node.
    pub fn new(
        cfg: SystemConfig,
        workload: Box<dyn Workload>,
        protocol: &dyn Fn(NodeId, &Layout, &SystemConfig) -> Box<dyn Protocol>,
    ) -> Self {
        let layout = workload.layout();
        let mut rng = DetRng::new(cfg.seed);
        let nodes = (0..cfg.nodes)
            .map(|i| NodeState {
                cpu: CpuState::new(NodeId::new(i as u16), &cfg, rng.fork(i as u64 * 2)),
                np: NpState::new(&cfg, rng.fork(i as u64 * 2 + 1)),
                mem: NodeMemory::new(),
                ptable: PageTable::new(),
                bulk: Vec::new(),
            })
            .collect();
        let protocols = (0..cfg.nodes)
            .map(|i| Some(protocol(NodeId::new(i as u16), &layout, &cfg)))
            .collect();
        let mut network = Network::new(cfg.nodes, cfg.timing.network_latency);
        network.set_occupancy(cfg.timing.network_occupancy);
        let quantum = cfg.timing.network_latency;
        let done = vec![None; cfg.nodes];
        TyphoonMachine {
            cfg,
            quantum,
            nodes,
            protocols,
            network,
            barrier: BarrierState::default(),
            workload,
            layout,
            done,
            bulk_seq: 0,
            tracer: None,
            tie_shuffle: None,
        }
    }

    /// Delivers same-cycle events in a seed-dependent permutation instead
    /// of FIFO order (see [`EventQueue::enable_tie_shuffle`]). Call
    /// before [`TyphoonMachine::run`].
    pub fn set_tie_shuffle(&mut self, seed: u64) {
        self.tie_shuffle = Some(seed);
    }

    /// Stretches every wire packet's latency by a deterministic extra
    /// `0..=max_extra` cycles drawn from `seed`, preserving per-link FIFO
    /// (see `tt_net::Network::set_jitter`). Call before
    /// [`TyphoonMachine::run`].
    pub fn set_net_jitter(&mut self, seed: u64, max_extra: Cycles) {
        self.network.set_jitter(seed, max_extra);
    }

    /// Installs a [`Tracer`] that receives every machine-level event
    /// (faults, handler dispatches, deliveries, barrier releases) with
    /// its simulated timestamp. See [`crate::trace`].
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = Some(tracer);
    }

    #[inline]
    fn trace(&mut self, at: Cycles, event: TraceEvent) {
        if let Some(t) = &mut self.tracer {
            t.record(TraceRecord { at, event });
        }
    }

    /// The workload's shared-segment layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    // --- Inspection (tt-check) -------------------------------------------
    //
    // Read-only views for the invariant engine. None of these are called
    // on the production path.

    /// The machine's configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The tag of `addr`'s block in `node`'s memory, or `None` if the
    /// node has no frame mapped for that page.
    pub fn node_tag(&self, node: usize, addr: VAddr) -> Option<Tag> {
        let n = &self.nodes[node];
        n.ptable.translate_addr(addr).map(|pa| n.mem.tag(pa))
    }

    /// The word at virtual `addr` in `node`'s memory, or `None` if the
    /// page is unmapped there.
    pub fn node_word(&self, node: usize, addr: VAddr) -> Option<u64> {
        let n = &self.nodes[node];
        n.ptable.translate_addr(addr).map(|pa| n.mem.read_word(pa))
    }

    /// Snapshots of every home-block directory entry across all nodes
    /// (via [`Protocol::inspect_directory`]). Empty for protocols that
    /// keep no directory.
    ///
    /// # Panics
    ///
    /// Panics if called from inside a protocol handler (the running
    /// node's protocol is temporarily taken); event-boundary observers
    /// never see that state.
    pub fn inspect_directories(&self) -> Vec<BlockDirSnapshot> {
        let mut out = Vec::new();
        for proto in &self.protocols {
            proto
                .as_ref()
                .expect("inspect between events, not mid-handler")
                .inspect_directory(&mut out);
        }
        out
    }

    /// Runs the simulation to completion and returns timing + statistics.
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (events drain while a processor is
    /// still blocked — a protocol that lost a resume, or a workload whose
    /// barrier counts differ across processors), or if value verification
    /// is enabled and a load observes a value that a sequentially
    /// consistent execution could not produce.
    pub fn run(&mut self) -> RunResult {
        let mut queue = self.start();
        tt_sim::run(self, &mut queue, RunLimit::none());
        self.finish()
    }

    /// Like [`TyphoonMachine::run`], but invokes `observe` after every
    /// event with the event just handled and the machine's post-event
    /// state — the attachment point for the `tt-check` invariant engine.
    /// Handlers are atomic, so at each callback the machine is in a
    /// consistent state (protocols restored, tags settled).
    ///
    /// Observation is a separate entry point so [`TyphoonMachine::run`]
    /// keeps the branch-free `tt_sim::run` loop: checking is zero-cost
    /// when off, and cycle counts are identical either way (observers
    /// cannot perturb timing).
    pub fn run_observed(
        &mut self,
        observe: &mut dyn FnMut(Cycles, &Event, &TyphoonMachine),
    ) -> RunResult {
        let mut queue = self.start();
        tt_sim::run_observed(self, &mut queue, RunLimit::none(), observe);
        self.finish()
    }

    /// Initializes protocols at time zero and seeds the event queue with
    /// every node's first CPU step.
    fn start(&mut self) -> EventQueue<Event> {
        let mut queue = EventQueue::new();
        if let Some(seed) = self.tie_shuffle {
            queue.enable_tie_shuffle(seed);
        }
        // Let every protocol initialize (map home pages, set up
        // directories) at time zero.
        for n in 0..self.cfg.nodes {
            let mut proto = self.protocols[n].take().expect("protocol present");
            let mut ctx = self.ctx(n, Cycles::ZERO, &mut queue);
            proto.init(&mut ctx);
            self.protocols[n] = Some(proto);
        }
        for n in 0..self.cfg.nodes {
            self.nodes[n].cpu.step_pending = true;
            schedule(&mut queue, Cycles::ZERO, Event::CpuStep(n));
        }
        queue
    }

    /// Asserts the machine drained cleanly and builds the result.
    fn finish(&mut self) -> RunResult {
        let stuck: Vec<_> = self
            .nodes
            .iter()
            .filter(|n| n.cpu.status != CpuStatus::Done)
            .map(|n| (n.cpu.id, n.cpu.status))
            .collect();
        assert!(
            stuck.is_empty(),
            "machine deadlocked with processors still blocked: {stuck:?} \
             (barrier arrived={}, np work pending={:?})",
            self.barrier.arrived,
            self.nodes
                .iter()
                .map(|n| n.np.has_work())
                .collect::<Vec<_>>()
        );

        let cycles = self
            .done
            .iter()
            .map(|d| d.expect("all processors done"))
            .max()
            .unwrap_or(Cycles::ZERO);
        RunResult {
            cycles,
            report: self.build_report(cycles),
        }
    }

    /// Builds a per-handler context for node `n`.
    fn ctx<'a>(
        &'a mut self,
        n: usize,
        start: Cycles,
        queue: &'a mut EventQueue<Event>,
    ) -> NodeCtx<'a> {
        let node = &mut self.nodes[n];
        NodeCtx {
            id: NodeId::new(n as u16),
            nodes: self.cfg.nodes,
            cfg: &self.cfg,
            start,
            cost: Cycles::ZERO,
            cpu: &mut node.cpu,
            np: &mut node.np,
            mem: &mut node.mem,
            ptable: &mut node.ptable,
            network: &mut self.network,
            queue,
            bulk_out: &mut node.bulk,
            bulk_seq: &mut self.bulk_seq,
        }
    }

    // --- CPU execution -------------------------------------------------

    /// The per-op inner loop. `self` is destructured once so the op loop
    /// works on a single `&mut NodeState` instead of re-indexing
    /// `self.nodes[n]` per op — this is the simulation's hottest code.
    fn cpu_step(&mut self, n: usize, now: Cycles, queue: &mut EventQueue<Event>) {
        let TyphoonMachine {
            cfg,
            quantum,
            nodes,
            barrier,
            workload,
            done,
            tracer,
            ..
        } = self;
        let node = &mut nodes[n];
        node.cpu.step_pending = false;
        if node.cpu.status != CpuStatus::Ready {
            return;
        }
        if node.cpu.clock < now {
            node.cpu.clock = now;
        }
        let mut deadline = now + *quantum;
        loop {
            // Refill the op chunk if exhausted, reusing its allocation.
            if node.cpu.pc >= node.cpu.chunk.len() {
                let mut chunk = std::mem::take(&mut node.cpu.chunk);
                if workload.next_chunk_into(NodeId::new(n as u16), &mut chunk) {
                    node.cpu.chunk = chunk;
                    node.cpu.pc = 0;
                    if node.cpu.chunk.is_empty() {
                        continue;
                    }
                } else {
                    node.cpu.status = CpuStatus::Done;
                    done[n] = Some(node.cpu.clock);
                    return;
                }
            }

            let op = node.cpu.chunk[node.cpu.pc];
            match op {
                Op::Compute(k) => {
                    let cpu = &mut node.cpu;
                    cpu.clock += Cycles::new(k as u64);
                    cpu.stats.compute_cycles.add(k as u64);
                    cpu.stats.ops.inc();
                    cpu.pc += 1;
                }
                Op::Read { addr, expect } => {
                    if !Self::access(cfg, tracer, node, n, queue, addr, AccessKind::Load, 0, expect)
                    {
                        return;
                    }
                }
                Op::Write { addr, value } => {
                    if !Self::access(
                        cfg,
                        tracer,
                        node,
                        n,
                        queue,
                        addr,
                        AccessKind::Store,
                        value,
                        None,
                    ) {
                        return;
                    }
                }
                Op::Barrier => {
                    let cpu = &mut node.cpu;
                    cpu.pc += 1;
                    cpu.stats.ops.inc();
                    cpu.status = CpuStatus::AtBarrier;
                    cpu.suspended_at = cpu.clock;
                    let arrival = cpu.clock;
                    barrier.arrived += 1;
                    if arrival > barrier.max_arrival {
                        barrier.max_arrival = arrival;
                    }
                    if barrier.arrived == cfg.nodes {
                        schedule(queue, 
                            barrier.max_arrival + cfg.timing.barrier_latency,
                            Event::BarrierRelease {
                                generation: barrier.generation,
                            },
                        );
                    }
                    return;
                }
                Op::UserCall { op, arg } => {
                    let cpu = &mut node.cpu;
                    cpu.pc += 1;
                    cpu.stats.ops.inc();
                    cpu.status = CpuStatus::BlockedCall;
                    cpu.suspended_at = cpu.clock;
                    let at = cpu.clock + Cycles::new(1);
                    let thread = cpu.thread();
                    schedule(queue, 
                        at,
                        Event::NpWork {
                            node: n,
                            work: NpWork::UserCall(thread, UserCall { op, arg }),
                        },
                    );
                    return;
                }
            }

            if node.cpu.clock >= deadline {
                let at = node.cpu.clock;
                // Direct execution (WWT-style): if every pending event
                // lies strictly beyond this CPU's clock, the wakeup we
                // are about to schedule would be the very next event
                // popped — so skip the queue round trip and keep
                // executing inline. The machine state and the order of
                // all remaining events are exactly what the scheduled
                // path would produce; only the self-wakeup is elided,
                // which is why reported cycles are byte-identical.
                if cfg.direct_execution && queue.peek_time().is_none_or(|t| t > at) {
                    deadline = at + *quantum;
                    continue;
                }
                let cpu = &mut node.cpu;
                cpu.step_pending = true;
                schedule(queue, at, Event::CpuStep(n));
                return;
            }
        }
    }

    /// Executes one tag-checked access; returns `false` if the CPU
    /// suspended (fault taken). An associated function over the split
    /// borrows so [`Self::cpu_step`] can call it while holding `node`.
    #[allow(clippy::too_many_arguments)]
    fn access(
        cfg: &SystemConfig,
        tracer: &mut Option<Box<dyn Tracer>>,
        node: &mut NodeState,
        n: usize,
        queue: &mut EventQueue<Event>,
        addr: VAddr,
        kind: AccessKind,
        value: u64,
        expect: Option<u64>,
    ) -> bool {
        let outcome = exec_access(
            cfg,
            &mut node.cpu,
            &mut node.np,
            &mut node.mem,
            &node.ptable,
            addr,
            kind,
            value,
        );
        match outcome {
            AccessOutcome::Done { cost, value: loaded } => {
                if cfg.verify_values {
                    if let (Some(expect), Some(got)) = (expect, loaded) {
                        assert_eq!(
                            got,
                            expect,
                            "coherence violation: node {n} read {addr} at cycle {} and \
                             observed {got:#x}, expected {expect:#x}",
                            node.cpu.clock
                        );
                    }
                }
                node.cpu.clock += cost;
                node.cpu.pc += 1;
                true
            }
            AccessOutcome::PageFault(fault, cost) => {
                node.cpu.clock += cost + cfg.typhoon.effective_fault_detect();
                node.cpu.status = CpuStatus::BlockedFault;
                node.cpu.suspended_at = node.cpu.clock;
                let at = node.cpu.clock;
                trace_into(
                    tracer,
                    at,
                    TraceEvent::PageFault {
                        node: NodeId::new(n as u16),
                        addr,
                    },
                );
                schedule(queue, 
                    at,
                    Event::NpWork {
                        node: n,
                        work: NpWork::PageFault(fault),
                    },
                );
                false
            }
            AccessOutcome::BlockFault(fault, cost) => {
                node.cpu.clock += cost;
                node.cpu.status = CpuStatus::BlockedFault;
                node.cpu.suspended_at = node.cpu.clock;
                let at = node.cpu.clock;
                trace_into(
                    tracer,
                    at,
                    TraceEvent::BlockFault {
                        node: NodeId::new(n as u16),
                        addr,
                        kind,
                    },
                );
                schedule(queue, 
                    at,
                    Event::NpWork {
                        node: n,
                        work: NpWork::BlockFault(fault),
                    },
                );
                false
            }
        }
    }

    // --- NP execution ---------------------------------------------------

    fn try_dispatch(&mut self, n: usize, now: Cycles, queue: &mut EventQueue<Event>) {
        let np = &mut self.nodes[n].np;
        if !np.has_work() {
            return;
        }
        if np.busy_until > now {
            if !np.dispatch_pending {
                np.dispatch_pending = true;
                schedule(queue, np.busy_until, Event::NpDispatch(n));
            }
            return;
        }
        self.run_one_handler(n, now, queue);
    }

    fn run_one_handler(&mut self, n: usize, now: Cycles, queue: &mut EventQueue<Event>) {
        let Some(work) = self.nodes[n].np.next_work() else {
            return;
        };
        let start = now + self.cfg.typhoon.effective_dispatch();
        {
            let stats = &mut self.nodes[n].np.stats;
            stats.handlers.inc();
            match &work {
                NpWork::Message(_) => {}
                NpWork::BlockFault(_) => stats.block_faults.inc(),
                NpWork::PageFault(_) => stats.page_faults.inc(),
                NpWork::UserCall(..) => stats.user_calls.inc(),
            }
        }
        let kind = match &work {
            NpWork::Message(m) => HandlerKind::Message(m.handler.raw()),
            NpWork::BlockFault(_) => HandlerKind::BlockFault,
            NpWork::PageFault(_) => HandlerKind::PageFault,
            NpWork::UserCall(..) => HandlerKind::UserCall,
        };
        self.trace(
            start,
            TraceEvent::HandlerStart {
                node: NodeId::new(n as u16),
                what: kind,
            },
        );
        let mut proto = self.protocols[n].take().expect("protocol present");
        let cost = {
            let mut ctx = self.ctx(n, start, queue);
            match work {
                NpWork::Message(m) => proto.on_message(&mut ctx, m),
                NpWork::BlockFault(f) => proto.on_block_fault(&mut ctx, f),
                NpWork::PageFault(f) => proto.on_page_fault(&mut ctx, f),
                NpWork::UserCall(t, c) => proto.on_user_call(&mut ctx, t, c),
            }
            let c = ctx.total_cost();
            if c == Cycles::ZERO {
                Cycles::new(1)
            } else {
                c
            }
        };
        self.protocols[n] = Some(proto);
        let node = &mut self.nodes[n];
        let np = &mut node.np;
        np.busy_until = start + cost;
        np.stats
            .busy_cycles
            .add((self.cfg.typhoon.effective_dispatch() + cost).raw());
        // Software Tempest: the handler ran on the primary CPU, stealing
        // its cycles if it was computing.
        if self.cfg.typhoon.np_mode == tt_base::config::NpMode::OnCpu
            && node.cpu.status == crate::cpu::CpuStatus::Ready
            && node.cpu.clock < np.busy_until
        {
            node.cpu.clock = np.busy_until;
        }
        if np.has_work() && !np.dispatch_pending {
            np.dispatch_pending = true;
            let at = np.busy_until;
            schedule(queue, at, Event::NpDispatch(n));
        }
    }

    // --- Packets ---------------------------------------------------------

    fn deliver(&mut self, packet: Packet, now: Cycles, queue: &mut EventQueue<Event>) {
        let n = packet.dst.index();
        self.trace(
            now,
            TraceEvent::Deliver {
                node: packet.dst,
                handler: packet.handler,
            },
        );
        if packet.handler >= MACHINE_HANDLER_BASE {
            self.deliver_machine_packet(packet, now, queue);
            return;
        }
        self.nodes[n].np.enqueue(NpWork::Message(Message::from_packet(packet)));
        self.try_dispatch(n, now, queue);
    }

    fn deliver_machine_packet(&mut self, packet: Packet, now: Cycles, queue: &mut EventQueue<Event>) {
        let n = packet.dst.index();
        match packet.handler {
            BULK_DATA => {
                let dst_addr = VAddr::new(packet.payload.words[0]);
                let node = &mut self.nodes[n];
                write_virtual_bytes(&mut node.mem, &node.ptable, dst_addr, &packet.payload.data);
                let np = &mut node.np;
                let busy = if np.busy_until > now { np.busy_until } else { now };
                np.busy_until = busy + self.cfg.typhoon.bulk_packet_cycles;
            }
            BULK_DONE => {
                let words = &packet.payload.words;
                let (src_base, dst_base, bytes) = (words[0], words[1], words[2]);
                let (notify_src, notify_dst) = (words[3], words[4]);
                if notify_dst != NO_HANDLER {
                    self.nodes[n].np.enqueue(NpWork::Message(Message {
                        src: packet.src,
                        vn: VirtualNet::Response,
                        handler: HandlerId(notify_dst as u32),
                        payload: Payload::args(vec![src_base, dst_base, bytes]),
                    }));
                    self.try_dispatch(n, now, queue);
                }
                if notify_src != NO_HANDLER {
                    let ack = Packet {
                        src: packet.dst,
                        dst: packet.src,
                        vn: VirtualNet::Response,
                        handler: BULK_ACK,
                        payload: Payload::args(vec![src_base, dst_base, bytes, notify_src]),
                    };
                    let at = self.network.send(now, &ack);
                    schedule(queue, at, Event::Deliver(ack));
                }
            }
            BULK_ACK => {
                let words = &packet.payload.words;
                self.nodes[n].np.enqueue(NpWork::Message(Message {
                    src: packet.src,
                    vn: VirtualNet::Response,
                    handler: HandlerId(words[3] as u32),
                    payload: Payload::args(vec![words[0], words[1], words[2]]),
                }));
                self.try_dispatch(n, now, queue);
            }
            other => panic!("unknown machine handler id {other:#x}"),
        }
    }

    fn bulk_inject(&mut self, n: usize, id: u64, now: Cycles, queue: &mut EventQueue<Event>) {
        let Some(pos) = self.nodes[n].bulk.iter().position(|b| b.id == id) else {
            return;
        };
        let busy_until = self.nodes[n].np.busy_until;
        if busy_until > now {
            schedule(queue, busy_until, Event::BulkInject { node: n, id });
            return;
        }
        let (packet, done_packet) = {
            let node = &mut self.nodes[n];
            let b = &mut node.bulk[pos];
            let req = b.request;
            let remaining = req.bytes - b.offset;
            let chunk = remaining.min(tt_tempest::bulk::BULK_PACKET_DATA_BYTES);
            let data = read_virtual_bytes(
                &node.mem,
                &node.ptable,
                req.src_addr.offset(b.offset as u64),
                chunk,
            );
            let packet = Packet {
                src: NodeId::new(n as u16),
                dst: req.dst,
                vn: VirtualNet::Request,
                handler: BULK_DATA,
                payload: Payload {
                    words: vec![req.dst_addr.raw() + b.offset as u64],
                    data,
                },
            };
            b.offset += chunk;
            node.np.stats.bulk_packets.inc();
            let done = if b.offset == req.bytes {
                let notify_src = req
                    .notify_src
                    .map(|h| h.raw() as u64)
                    .unwrap_or(NO_HANDLER);
                let notify_dst = req
                    .notify_dst
                    .map(|h| h.raw() as u64)
                    .unwrap_or(NO_HANDLER);
                Some(Packet {
                    src: NodeId::new(n as u16),
                    dst: req.dst,
                    vn: VirtualNet::Request,
                    handler: BULK_DONE,
                    payload: Payload::args(vec![
                        req.src_addr.raw(),
                        req.dst_addr.raw(),
                        req.bytes as u64,
                        notify_src,
                        notify_dst,
                    ]),
                })
            } else {
                None
            };
            done
                .map(|d| (packet.clone(), Some(d)))
                .unwrap_or((packet, None))
        };
        let at = self.network.send(now, &packet);
        schedule(queue, at, Event::Deliver(packet));
        let np = &mut self.nodes[n].np;
        np.busy_until = now + self.cfg.typhoon.bulk_packet_cycles;
        if let Some(done) = done_packet {
            let at = self.network.send(np.busy_until, &done);
            schedule(queue, at, Event::Deliver(done));
            self.nodes[n].bulk.remove(pos);
        } else {
            let at = np.busy_until;
            schedule(queue, at, Event::BulkInject { node: n, id });
        }
    }

    fn barrier_release(&mut self, generation: u64, now: Cycles, queue: &mut EventQueue<Event>) {
        assert_eq!(generation, self.barrier.generation, "stale barrier release");
        self.trace(now, TraceEvent::BarrierRelease);
        self.barrier.generation += 1;
        self.barrier.arrived = 0;
        self.barrier.max_arrival = Cycles::ZERO;
        self.barrier.releases += 1;
        for n in 0..self.cfg.nodes {
            let cpu = &mut self.nodes[n].cpu;
            assert_eq!(cpu.status, CpuStatus::AtBarrier, "node {n} missed the barrier");
            cpu.stats
                .barrier_wait_cycles
                .add((now - cpu.suspended_at).raw());
            cpu.status = CpuStatus::Ready;
            cpu.clock = now;
            if !cpu.step_pending {
                cpu.step_pending = true;
                schedule(queue, now, Event::CpuStep(n));
            }
        }
    }

    // --- Reporting -------------------------------------------------------

    fn build_report(&mut self, cycles: Cycles) -> Report {
        let mut r = Report::new();
        r.push_count("machine.cycles", cycles.raw());
        r.push_count("machine.nodes", self.cfg.nodes as u64);
        r.push_count("machine.barriers", self.barrier.releases);

        let mut ops = 0u64;
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut compute = 0u64;
        let mut local_misses = 0u64;
        let mut upgrades = 0u64;
        let mut block_faults = 0u64;
        let mut page_faults = 0u64;
        let mut fault_stall = 0u64;
        let mut barrier_wait = 0u64;
        let mut call_stall = 0u64;
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        let mut tlb_misses = 0u64;
        let mut rtlb_misses = 0u64;
        for node in &self.nodes {
            let s = &node.cpu.stats;
            ops += s.ops.get();
            reads += s.reads.get();
            writes += s.writes.get();
            compute += s.compute_cycles.get();
            local_misses += s.local_misses.get();
            upgrades += s.upgrades.get();
            block_faults += s.block_faults.get();
            page_faults += s.page_faults.get();
            fault_stall += s.fault_stall_cycles.get();
            barrier_wait += s.barrier_wait_cycles.get();
            call_stall += s.call_stall_cycles.get();
            cache_hits += node.cpu.cache.stats().hits.get();
            cache_misses += node.cpu.cache.stats().misses.get();
            tlb_misses += node.cpu.tlb.stats().misses.get();
            rtlb_misses += s.rtlb_misses.get();
        }
        r.push_count("cpu.ops", ops);
        r.push_count("cpu.reads", reads);
        r.push_count("cpu.writes", writes);
        r.push_count("cpu.compute_cycles", compute);
        r.push_count("cpu.local_misses", local_misses);
        r.push_count("cpu.upgrades", upgrades);
        r.push_count("cpu.block_faults", block_faults);
        r.push_count("cpu.page_faults", page_faults);
        r.push_count("cpu.fault_stall_cycles", fault_stall);
        r.push_count("cpu.barrier_wait_cycles", barrier_wait);
        r.push_count("cpu.call_stall_cycles", call_stall);
        r.push_count("cpu.cache_hits", cache_hits);
        r.push_count("cpu.cache_misses", cache_misses);
        r.push_count("cpu.tlb_misses", tlb_misses);
        r.push_count("cpu.rtlb_misses", rtlb_misses);

        let mut handlers = 0u64;
        let mut instr = 0u64;
        let mut messages = 0u64;
        let mut busy = 0u64;
        let mut bulk_packets = 0u64;
        for node in &self.nodes {
            let s = &node.np.stats;
            handlers += s.handlers.get();
            instr += s.instructions.get();
            messages += s.messages.get();
            busy += s.busy_cycles.get();
            bulk_packets += s.bulk_packets.get();
        }
        r.push_count("np.handlers", handlers);
        r.push_count("np.instructions", instr);
        r.push_count("np.messages", messages);
        r.push_count("np.busy_cycles", busy);
        r.push_count("np.bulk_packets", bulk_packets);

        let net = self.network.stats();
        r.push_count("net.packets", net.total_packets());
        r.push_count("net.bytes", net.total_bytes());
        r.push_count("net.local_packets", net.local_packets.get());

        // Aggregate protocol statistics across nodes by summing rows with
        // equal names.
        let mut order: Vec<String> = Vec::new();
        let mut sums: HashMap<String, f64> = HashMap::new();
        for proto in self.protocols.iter().flatten() {
            let mut pr = Report::new();
            proto.report(&mut pr);
            for row in pr.iter() {
                if !sums.contains_key(&row.name) {
                    order.push(row.name.clone());
                }
                *sums.entry(row.name.clone()).or_insert(0.0) += row.value;
            }
        }
        for name in order {
            let v = sums[&name];
            r.push(name, v);
        }
        r
    }
}

/// Records a trace event through an optional tracer; the out-of-line
/// equivalent of [`TyphoonMachine::trace`] for code holding split borrows.
#[inline]
fn trace_into(tracer: &mut Option<Box<dyn Tracer>>, at: Cycles, event: TraceEvent) {
    if let Some(t) = tracer {
        t.record(TraceRecord { at, event });
    }
}

/// Reads `len` bytes starting at virtual `addr` (word-aligned) through the
/// node's page table.
fn read_virtual_bytes(mem: &NodeMemory, pt: &PageTable, addr: VAddr, len: usize) -> Vec<u8> {
    assert_eq!(addr.raw() % WORD_BYTES as u64, 0, "bulk source unaligned");
    assert_eq!(len % WORD_BYTES, 0, "bulk length unaligned");
    let mut out = Vec::with_capacity(len);
    for w in 0..len / WORD_BYTES {
        let va = addr.offset((w * WORD_BYTES) as u64);
        let pa = pt
            .translate_addr(va)
            .unwrap_or_else(|| panic!("bulk read from unmapped address {va}"));
        out.extend_from_slice(&mem.read_word(pa).to_le_bytes());
    }
    out
}

/// Writes bytes starting at virtual `addr` (word-aligned) through the
/// node's page table.
fn write_virtual_bytes(mem: &mut NodeMemory, pt: &PageTable, addr: VAddr, data: &[u8]) {
    assert_eq!(addr.raw() % WORD_BYTES as u64, 0, "bulk destination unaligned");
    assert_eq!(data.len() % WORD_BYTES, 0, "bulk length unaligned");
    for (w, chunk) in data.chunks_exact(WORD_BYTES).enumerate() {
        let va = addr.offset((w * WORD_BYTES) as u64);
        let pa = pt
            .translate_addr(va)
            .unwrap_or_else(|| panic!("bulk write to unmapped address {va}"));
        mem.write_word(pa, u64::from_le_bytes(chunk.try_into().unwrap()));
    }
}

impl EventHandler for TyphoonMachine {
    type Event = Event;

    fn handle(&mut self, now: Cycles, event: Event, queue: &mut EventQueue<Event>) {
        match event {
            Event::CpuStep(n) => self.cpu_step(n, now, queue),
            Event::NpDispatch(n) => {
                self.nodes[n].np.dispatch_pending = false;
                let np = &mut self.nodes[n].np;
                if np.busy_until > now {
                    np.dispatch_pending = true;
                    let at = np.busy_until;
                    schedule(queue, at, Event::NpDispatch(n));
                } else if np.has_work() {
                    self.run_one_handler(n, now, queue);
                }
            }
            Event::NpWork { node, work } => {
                self.nodes[node].np.enqueue(work);
                self.try_dispatch(node, now, queue);
            }
            Event::Deliver(packet) => self.deliver(packet, now, queue),
            Event::BarrierRelease { generation } => self.barrier_release(generation, now, queue),
            Event::BulkInject { node, id } => self.bulk_inject(node, id, now, queue),
        }
    }
}
