//! The Typhoon machine: nodes, events, and the simulation driver.
//!
//! The machine executes a [`Workload`]'s op streams on `nodes` simulated
//! processors, each paired with a network interface processor running one
//! instance of a user-level [`Protocol`]. See the crate docs for the
//! modeling approach.
//!
//! # Parallel simulation
//!
//! With `SystemConfig::sim_threads > 1` the machine partitions its nodes
//! into contiguous shards and runs one shard per OS thread under the
//! conservative window scheme of [`tt_sim::pdes`]. All mutable per-node
//! state lives in [`NodeState`] and is handed to a shard as a slice; the
//! network is cloned per shard (its send-side state is per-source-node),
//! and the workload sits behind a mutex (chunk refills are the only
//! shared pulls). Event keys are deterministic `(origin, counter)` pairs,
//! so reported cycles and statistics are bit-identical at every thread
//! count — the equivalence tests pin this.

use std::collections::HashMap;
use std::sync::Mutex;

use tt_base::addr::{VAddr, WORD_BYTES};
use tt_base::config::SystemConfig;
use tt_base::stats::{PdesTelemetry, Report};
use tt_base::workload::{Layout, Op, Workload};
use tt_base::{Cycles, DetRng, NodeId};
use tt_mem::{AccessKind, NodeMemory, PageTable, Tag};
use tt_net::{Network, Packet, Payload, VirtualNet};
use tt_sim::{OutMsg, ShardQueue, Windowing};
use tt_tempest::{BlockDirSnapshot, BulkRequest, HandlerId, Message, Protocol, UserCall};

use crate::cpu::{exec_access, AccessOutcome, CpuState, CpuStatus};
use crate::ctx::NodeCtx;
use crate::np::{NpState, NpWork};
use crate::trace::{HandlerKind, TraceEvent, TraceRecord, Tracer};

/// Handler-id space reserved for machine-internal packets (bulk data);
/// protocol handler ids must stay below this.
pub const MACHINE_HANDLER_BASE: u32 = 0xFFFF_FF00;
const BULK_DATA: u32 = MACHINE_HANDLER_BASE;
const BULK_DONE: u32 = MACHINE_HANDLER_BASE + 1;
const BULK_ACK: u32 = MACHINE_HANDLER_BASE + 2;
/// Sentinel for "no notify handler" in bulk-done packets.
const NO_HANDLER: u64 = u64::MAX;

/// A simulation event.
#[derive(Clone, Debug)]
pub enum Event {
    /// Run (at most a quantum of) ops on a CPU.
    CpuStep(usize),
    /// The NP's dispatch loop looks for work.
    NpDispatch(usize),
    /// Work arrives at a node's NP (faults, application calls).
    NpWork {
        /// Destination node index.
        node: usize,
        /// The work item.
        work: NpWork,
    },
    /// A network packet arrives at its destination.
    Deliver(Packet),
    /// All processors arrived; release the barrier.
    BarrierRelease {
        /// Barrier generation (for sanity checking).
        generation: u64,
    },
    /// Inject the next packet of an active bulk transfer.
    BulkInject {
        /// Source node index.
        node: usize,
        /// Transfer id.
        id: u64,
    },
}

impl Event {
    /// The node whose state handling this event touches, or `None` for
    /// events with machine-global effect. Routes events to their owning
    /// shard and feeds the event queue's per-node horizon tracking.
    pub fn target(&self) -> Option<usize> {
        match self {
            Event::CpuStep(n) | Event::NpDispatch(n) => Some(*n),
            Event::NpWork { node, .. } | Event::BulkInject { node, .. } => Some(*node),
            Event::Deliver(p) => Some(p.dst.index()),
            Event::BarrierRelease { .. } => None,
        }
    }
}

/// Schedules a machine event with its per-node target declared. Every
/// schedule in the machine and its contexts funnels through here, so
/// each event gets a deterministic `(origin, counter)` key and lands on
/// the shard that owns its target.
pub(crate) fn schedule(queue: &mut ShardQueue<Event>, at: Cycles, event: Event) {
    match event.target() {
        Some(target) => queue.schedule_for(at, target, event),
        None => queue.schedule_global(at, event),
    }
}

/// An in-progress outgoing bulk transfer.
#[derive(Clone, Debug)]
pub struct BulkState {
    /// Transfer id (unique per source node).
    pub id: u64,
    /// The original request.
    pub request: BulkRequest,
    /// Bytes injected so far.
    pub offset: usize,
}

/// One node: CPU + NP + memory + page table + active bulk transfers.
/// Everything a shard thread mutates for this node lives here.
struct NodeState {
    cpu: CpuState,
    np: NpState,
    mem: NodeMemory,
    ptable: PageTable,
    bulk: Vec<BulkState>,
    /// Ids for this node's bulk transfers (bulk ids are matched only
    /// against the owning node's `bulk` list).
    bulk_seq: u64,
}

/// Barrier bookkeeping a shard carries: how many releases it has applied
/// and the generation it expects next. Every shard observes every
/// release, so after a run all shards' tallies agree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct BarrierTally {
    generation: u64,
    releases: u64,
}

/// The result of a completed simulation.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Total execution time (when the last processor finished).
    pub cycles: Cycles,
    /// Aggregated machine, network, and protocol statistics.
    pub report: Report,
    /// Host-side window-driver telemetry; `None` on the sequential path.
    /// Kept out of `report` so sequential and parallel reports compare
    /// equal.
    pub pdes: Option<PdesTelemetry>,
}

/// The Typhoon machine (see crate docs).
pub struct TyphoonMachine {
    cfg: SystemConfig,
    quantum: Cycles,
    nodes: Vec<NodeState>,
    protocols: Vec<Option<Box<dyn Protocol>>>,
    network: Network,
    barrier: BarrierTally,
    workload: Mutex<Box<dyn Workload>>,
    layout: Layout,
    done: Vec<Option<Cycles>>,
    tracer: Option<Box<dyn Tracer>>,
    /// Seed for same-cycle tie-shuffling, applied to the event queue at
    /// `run` time (a `tt-check` legal-nondeterminism knob).
    tie_shuffle: Option<u64>,
}

/// A shard's view of the machine: the contiguous node range it owns plus
/// the shared pieces. In sequential mode one shard views everything; in
/// parallel mode each worker thread owns one. All methods take node
/// indices in *global* terms and translate via `first`.
struct Shard<'m> {
    cfg: &'m SystemConfig,
    quantum: Cycles,
    /// First global node index this shard owns.
    first: usize,
    nodes: &'m mut [NodeState],
    protocols: &'m mut [Option<Box<dyn Protocol>>],
    done: &'m mut [Option<Cycles>],
    /// This shard's network instance. Send-side state (occupancy ports,
    /// jitter pair counters) is per-source-node and handlers only send
    /// from their own node, so shards never alias it.
    network: &'m mut Network,
    workload: &'m Mutex<Box<dyn Workload>>,
    /// Present only in sequential mode: tracing needs the single total
    /// event order.
    tracer: Option<&'m mut Box<dyn Tracer>>,
    barrier: &'m mut BarrierTally,
}

impl TyphoonMachine {
    /// Builds a machine: one CPU/NP pair per node, a fresh protocol
    /// instance per node from `protocol`, and the given workload.
    ///
    /// The factory receives the node id and the workload's layout — the
    /// moral equivalent of the paper's "distributed mapping table" being
    /// known to the run-time library on every node.
    pub fn new(
        cfg: SystemConfig,
        workload: Box<dyn Workload>,
        protocol: &dyn Fn(NodeId, &Layout, &SystemConfig) -> Box<dyn Protocol>,
    ) -> Self {
        let layout = workload.layout();
        let mut rng = DetRng::new(cfg.seed);
        let nodes = (0..cfg.nodes)
            .map(|i| NodeState {
                cpu: CpuState::new(NodeId::new(i as u16), &cfg, rng.fork(i as u64 * 2)),
                np: NpState::new(&cfg, rng.fork(i as u64 * 2 + 1)),
                mem: NodeMemory::new(),
                ptable: PageTable::new(),
                bulk: Vec::new(),
                bulk_seq: 0,
            })
            .collect();
        let protocols = (0..cfg.nodes)
            .map(|i| Some(protocol(NodeId::new(i as u16), &layout, &cfg)))
            .collect();
        let mut network = Network::new(cfg.nodes, cfg.timing.network_latency);
        network.set_occupancy(cfg.timing.network_occupancy);
        network.set_topology(cfg.topology);
        if let Some(spec) = cfg.fault {
            network.set_fault_plan(spec);
        }
        let quantum = cfg.timing.network_latency;
        let done = vec![None; cfg.nodes];
        TyphoonMachine {
            cfg,
            quantum,
            nodes,
            protocols,
            network,
            barrier: BarrierTally::default(),
            workload: Mutex::new(workload),
            layout,
            done,
            tracer: None,
            tie_shuffle: None,
        }
    }

    /// Delivers same-cycle events in a seed-dependent permutation instead
    /// of FIFO order (see `EventQueue::enable_tie_shuffle`). Call
    /// before [`TyphoonMachine::run`].
    pub fn set_tie_shuffle(&mut self, seed: u64) {
        self.tie_shuffle = Some(seed);
    }

    /// Stretches every wire packet's latency by a deterministic extra
    /// `0..=max_extra` cycles drawn from `seed`, preserving per-link FIFO
    /// (see `tt_net::Network::set_jitter`). Call before
    /// [`TyphoonMachine::run`].
    pub fn set_net_jitter(&mut self, seed: u64, max_extra: Cycles) {
        self.network.set_jitter(seed, max_extra);
    }

    /// Installs a [`Tracer`] that receives every machine-level event
    /// (faults, handler dispatches, deliveries, barrier releases) with
    /// its simulated timestamp. See [`crate::trace`]. Requires
    /// `sim_threads = 1`.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = Some(tracer);
    }

    /// The workload's shared-segment layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    // --- Inspection (tt-check) -------------------------------------------
    //
    // Read-only views for the invariant engine. None of these are called
    // on the production path.

    /// The machine's configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The tag of `addr`'s block in `node`'s memory, or `None` if the
    /// node has no frame mapped for that page.
    pub fn node_tag(&self, node: usize, addr: VAddr) -> Option<Tag> {
        let n = &self.nodes[node];
        n.ptable.translate_addr(addr).map(|pa| n.mem.tag(pa))
    }

    /// The word at virtual `addr` in `node`'s memory, or `None` if the
    /// page is unmapped there.
    pub fn node_word(&self, node: usize, addr: VAddr) -> Option<u64> {
        let n = &self.nodes[node];
        n.ptable.translate_addr(addr).map(|pa| n.mem.read_word(pa))
    }

    /// Values `node`'s CPU observed via `Op::ReadRecord` loads, in
    /// program order (litmus harnesses read these back after a run).
    pub fn recorded_reads(&self, node: usize) -> &[u64] {
        &self.nodes[node].cpu.recorded
    }

    /// Snapshots of every home-block directory entry across all nodes
    /// (via [`Protocol::inspect_directory`]). Empty for protocols that
    /// keep no directory.
    ///
    /// # Panics
    ///
    /// Panics if called from inside a protocol handler (the running
    /// node's protocol is temporarily taken); event-boundary observers
    /// never see that state.
    pub fn inspect_directories(&self) -> Vec<BlockDirSnapshot> {
        let mut out = Vec::new();
        for proto in &self.protocols {
            proto
                .as_ref()
                .expect("inspect between events, not mid-handler")
                .inspect_directory(&mut out);
        }
        out
    }

    /// Runs the simulation to completion and returns timing + statistics.
    /// `SystemConfig::sim_threads` selects the sequential event loop or
    /// the windowed parallel one; results are bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (events drain while a processor is
    /// still blocked — a protocol that lost a resume, or a workload whose
    /// barrier counts differ across processors), or if value verification
    /// is enabled and a load observes a value that a sequentially
    /// consistent execution could not produce.
    pub fn run(&mut self) -> RunResult {
        let (shard_count, threads) = self.cfg.pdes_shape();
        if shard_count == 1 {
            self.run_sequential()
        } else {
            self.run_parallel(shard_count, threads)
        }
    }

    /// Like [`TyphoonMachine::run`], but invokes `observe` after every
    /// event with the event just handled and the machine's post-event
    /// state — the attachment point for the `tt-check` invariant engine.
    /// Handlers are atomic, so at each callback the machine is in a
    /// consistent state (protocols restored, tags settled).
    ///
    /// Always runs on the sequential path regardless of `sim_threads`
    /// (the observer wants the single total event order); cycle counts
    /// are identical either way, which the equivalence tests pin.
    pub fn run_observed(
        &mut self,
        observe: &mut dyn FnMut(Cycles, &Event, &TyphoonMachine),
    ) -> RunResult {
        let mut queue = self.sequential_queue();
        {
            let mut shard = self.whole_shard();
            shard.init_nodes(&mut queue);
        }
        while let Some((now, event)) = queue.pop(|e: &Event| e.target()) {
            let observed = event.clone();
            {
                let mut shard = self.whole_shard();
                shard.handle(now, event, &mut queue);
            }
            observe(now, &observed, self);
        }
        self.finish()
    }

    /// The single-shard queue: inline barrier completion, no windows.
    /// This path *is* the sequential simulator.
    fn sequential_queue(&self) -> ShardQueue<Event> {
        let mut queue = ShardQueue::new(0, self.cfg.nodes);
        if let Some(seed) = self.tie_shuffle {
            queue.enable_tie_shuffle(seed);
        }
        queue.enable_inline_barrier(self.cfg.nodes, self.cfg.timing.barrier_latency);
        queue
    }

    /// A shard view spanning every node (sequential and observed runs).
    fn whole_shard(&mut self) -> Shard<'_> {
        Shard {
            cfg: &self.cfg,
            quantum: self.quantum,
            first: 0,
            nodes: &mut self.nodes,
            protocols: &mut self.protocols,
            done: &mut self.done,
            network: &mut self.network,
            workload: &self.workload,
            tracer: self.tracer.as_mut(),
            barrier: &mut self.barrier,
        }
    }

    fn run_sequential(&mut self) -> RunResult {
        let mut queue = self.sequential_queue();
        {
            let mut shard = self.whole_shard();
            shard.init_nodes(&mut queue);
            while let Some((now, event)) = queue.pop(|e: &Event| e.target()) {
                shard.handle(now, event, &mut queue);
            }
        }
        self.finish()
    }

    fn run_parallel(&mut self, shard_count: usize, threads: usize) -> RunResult {
        assert!(
            self.tracer.is_none(),
            "tracing requires sim_threads = 1: a tracer observes one total event order"
        );
        let nodes_total = self.cfg.nodes;
        let lookahead = self.network.lookahead();
        let release_delay = self.cfg.timing.barrier_latency;
        let policy = self.cfg.window_policy;
        let ranges = split_ranges(nodes_total, shard_count);
        let telemetry;

        let mut queues: Vec<ShardQueue<Event>> = ranges
            .iter()
            .map(|&(first, len)| {
                let mut q = ShardQueue::new(first, len);
                if let Some(seed) = self.tie_shuffle {
                    q.enable_tie_shuffle(seed);
                }
                q
            })
            .collect();
        // Cloned before any traffic: stats start at zero and are folded
        // back after the run; jitter/occupancy configuration rides along.
        let mut nets: Vec<Network> = (0..shard_count).map(|_| self.network.clone()).collect();
        let mut tallies = vec![BarrierTally::default(); shard_count];

        {
            let TyphoonMachine {
                cfg,
                quantum,
                nodes,
                protocols,
                workload,
                done,
                ..
            } = self;
            let mut shards: Vec<Shard<'_>> = Vec::with_capacity(shard_count);
            let mut nodes_rest = &mut nodes[..];
            let mut protos_rest = &mut protocols[..];
            let mut done_rest = &mut done[..];
            let mut nets_iter = nets.iter_mut();
            let mut tally_iter = tallies.iter_mut();
            for &(first, len) in &ranges {
                let (shard_nodes, rest) = nodes_rest.split_at_mut(len);
                nodes_rest = rest;
                let (shard_protos, rest) = protos_rest.split_at_mut(len);
                protos_rest = rest;
                let (shard_done, rest) = done_rest.split_at_mut(len);
                done_rest = rest;
                shards.push(Shard {
                    cfg,
                    quantum: *quantum,
                    first,
                    nodes: shard_nodes,
                    protocols: shard_protos,
                    done: shard_done,
                    network: nets_iter.next().expect("one net per shard"),
                    workload,
                    tracer: None,
                    barrier: tally_iter.next().expect("one tally per shard"),
                });
            }

            for (shard, queue) in shards.iter_mut().zip(queues.iter_mut()) {
                shard.init_nodes(queue);
            }
            // Protocol init may have scheduled cross-shard messages;
            // route them before the window driver takes over (all are at
            // ≥ the lookahead, so they cannot land inside the first
            // window).
            let pending: Vec<OutMsg<Event>> = queues
                .iter_mut()
                .flat_map(|q| q.take_outbox())
                .collect();
            for msg in pending {
                let owner = ranges
                    .iter()
                    .position(|&(f, l)| (f..f + l).contains(&msg.target))
                    .expect("target node within a shard");
                queues[owner].deliver(msg);
            }

            telemetry = tt_sim::run_windows(
                &mut shards,
                &mut queues,
                Windowing {
                    lookahead,
                    release_delay,
                    barrier_expected: nodes_total,
                    policy,
                    threads,
                },
                |shard: &mut Shard<'_>, now, event, queue| shard.handle(now, event, queue),
                |_shard, queue, at, generation| {
                    queue.deliver_release(at, generation, Event::BarrierRelease { generation })
                },
                |e: &Event| e.target(),
            )
            .1;
        }

        for net in &nets {
            self.network.absorb_stats(net);
        }
        assert!(
            tallies.windows(2).all(|w| w[0] == w[1]),
            "shards disagree on barrier history: {tallies:?}"
        );
        self.barrier = tallies[0].clone();
        let mut result = self.finish();
        result.pdes = Some(telemetry);
        result
    }

    /// Asserts the machine drained cleanly and builds the result.
    fn finish(&mut self) -> RunResult {
        let stuck: Vec<_> = self
            .nodes
            .iter()
            .filter(|n| n.cpu.status != CpuStatus::Done)
            .map(|n| (n.cpu.id, n.cpu.status))
            .collect();
        assert!(
            stuck.is_empty(),
            "machine deadlocked with processors still blocked: {stuck:?} \
             (np work pending={:?})",
            self.nodes
                .iter()
                .map(|n| n.np.has_work())
                .collect::<Vec<_>>()
        );

        let cycles = self
            .done
            .iter()
            .map(|d| d.expect("all processors done"))
            .max()
            .unwrap_or(Cycles::ZERO);
        RunResult {
            cycles,
            report: self.build_report(cycles),
            pdes: None,
        }
    }

    // --- Reporting -------------------------------------------------------

    fn build_report(&mut self, cycles: Cycles) -> Report {
        let mut r = Report::new();
        r.push_count("machine.cycles", cycles.raw());
        r.push_count("machine.nodes", self.cfg.nodes as u64);
        r.push_count("machine.barriers", self.barrier.releases);

        let mut ops = 0u64;
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut compute = 0u64;
        let mut local_misses = 0u64;
        let mut upgrades = 0u64;
        let mut block_faults = 0u64;
        let mut page_faults = 0u64;
        let mut fault_stall = 0u64;
        let mut barrier_wait = 0u64;
        let mut call_stall = 0u64;
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        let mut tlb_misses = 0u64;
        let mut rtlb_misses = 0u64;
        let mut idle = 0u64;
        for node in &self.nodes {
            let s = &node.cpu.stats;
            ops += s.ops.get();
            reads += s.reads.get();
            writes += s.writes.get();
            compute += s.compute_cycles.get();
            local_misses += s.local_misses.get();
            upgrades += s.upgrades.get();
            block_faults += s.block_faults.get();
            page_faults += s.page_faults.get();
            fault_stall += s.fault_stall_cycles.get();
            barrier_wait += s.barrier_wait_cycles.get();
            call_stall += s.call_stall_cycles.get();
            cache_hits += node.cpu.cache.stats().hits.get();
            cache_misses += node.cpu.cache.stats().misses.get();
            tlb_misses += node.cpu.tlb.stats().misses.get();
            rtlb_misses += s.rtlb_misses.get();
            idle += s.idle_cycles.get();
        }
        r.push_count("cpu.ops", ops);
        r.push_count("cpu.reads", reads);
        r.push_count("cpu.writes", writes);
        r.push_count("cpu.compute_cycles", compute);
        r.push_count("cpu.local_misses", local_misses);
        r.push_count("cpu.upgrades", upgrades);
        r.push_count("cpu.block_faults", block_faults);
        r.push_count("cpu.page_faults", page_faults);
        r.push_count("cpu.fault_stall_cycles", fault_stall);
        r.push_count("cpu.barrier_wait_cycles", barrier_wait);
        r.push_count("cpu.call_stall_cycles", call_stall);
        r.push_count("cpu.cache_hits", cache_hits);
        r.push_count("cpu.cache_misses", cache_misses);
        r.push_count("cpu.tlb_misses", tlb_misses);
        r.push_count("cpu.rtlb_misses", rtlb_misses);
        r.push_count("cpu.idle_cycles", idle);

        let mut handlers = 0u64;
        let mut instr = 0u64;
        let mut messages = 0u64;
        let mut busy = 0u64;
        let mut bulk_packets = 0u64;
        for node in &self.nodes {
            let s = &node.np.stats;
            handlers += s.handlers.get();
            instr += s.instructions.get();
            messages += s.messages.get();
            busy += s.busy_cycles.get();
            bulk_packets += s.bulk_packets.get();
        }
        r.push_count("np.handlers", handlers);
        r.push_count("np.instructions", instr);
        r.push_count("np.messages", messages);
        r.push_count("np.busy_cycles", busy);
        r.push_count("np.bulk_packets", bulk_packets);

        let net = self.network.stats();
        r.push_count("net.packets", net.total_packets());
        r.push_count("net.bytes", net.total_bytes());
        r.push_count("net.local_packets", net.local_packets.get());

        // Aggregate protocol statistics across nodes by summing rows with
        // equal names.
        let mut order: Vec<String> = Vec::new();
        let mut sums: HashMap<String, f64> = HashMap::new();
        for proto in self.protocols.iter().flatten() {
            let mut pr = Report::new();
            proto.report(&mut pr);
            for row in pr.iter() {
                if !sums.contains_key(&row.name) {
                    order.push(row.name.clone());
                }
                *sums.entry(row.name.clone()).or_insert(0.0) += row.value;
            }
        }
        for name in order {
            let v = sums[&name];
            r.push(name, v);
        }
        r
    }
}

/// Contiguous `(first, len)` node ranges splitting `total` nodes into
/// `parts` shards of near-equal size.
fn split_ranges(total: usize, parts: usize) -> Vec<(usize, usize)> {
    (0..parts)
        .map(|i| {
            let first = i * total / parts;
            let end = (i + 1) * total / parts;
            (first, end - first)
        })
        .collect()
}

impl<'m> Shard<'m> {
    /// Dispatches one event, declaring the handling node as the origin
    /// of everything the handler schedules (the key scheme's anchor).
    fn handle(&mut self, now: Cycles, event: Event, queue: &mut ShardQueue<Event>) {
        match event.target() {
            Some(t) => queue.set_origin(t),
            None => queue.set_origin_global(),
        }
        match event {
            Event::CpuStep(n) => self.cpu_step(n, now, queue),
            Event::NpDispatch(n) => {
                let np = &mut self.nodes[n - self.first].np;
                np.dispatch_pending = false;
                if np.busy_until > now {
                    np.dispatch_pending = true;
                    let at = np.busy_until;
                    schedule(queue, at, Event::NpDispatch(n));
                } else if np.has_work() {
                    self.run_one_handler(n, now, queue);
                }
            }
            Event::NpWork { node, work } => {
                self.nodes[node - self.first].np.enqueue(work);
                self.try_dispatch(node, now, queue);
            }
            Event::Deliver(packet) => self.deliver(packet, now, queue),
            Event::BarrierRelease { generation } => self.release_local(now, generation, queue),
            Event::BulkInject { node, id } => self.bulk_inject(node, id, now, queue),
        }
    }

    /// Initializes this shard's protocols at time zero and seeds the
    /// queue with each owned node's first CPU step. Per-origin key
    /// counters make the result independent of how shards interleave
    /// their init loops.
    fn init_nodes(&mut self, queue: &mut ShardQueue<Event>) {
        for l in 0..self.nodes.len() {
            let n = self.first + l;
            queue.set_origin(n);
            let mut proto = self.protocols[l].take().expect("protocol present");
            let mut ctx = self.ctx(n, Cycles::ZERO, queue);
            proto.init(&mut ctx);
            self.protocols[l] = Some(proto);
        }
        for l in 0..self.nodes.len() {
            let n = self.first + l;
            queue.set_origin(n);
            self.nodes[l].cpu.step_pending = true;
            schedule(queue, Cycles::ZERO, Event::CpuStep(n));
        }
    }

    #[inline]
    fn trace(&mut self, at: Cycles, event: TraceEvent) {
        if let Some(t) = &mut self.tracer {
            t.record(TraceRecord { at, event });
        }
    }

    /// Builds a per-handler context for (globally indexed) node `n`.
    fn ctx<'a>(
        &'a mut self,
        n: usize,
        start: Cycles,
        queue: &'a mut ShardQueue<Event>,
    ) -> NodeCtx<'a> {
        let node = &mut self.nodes[n - self.first];
        NodeCtx {
            id: NodeId::new(n as u16),
            nodes: self.cfg.nodes,
            cfg: self.cfg,
            start,
            cost: Cycles::ZERO,
            cpu: &mut node.cpu,
            np: &mut node.np,
            mem: &mut node.mem,
            ptable: &mut node.ptable,
            network: self.network,
            queue,
            bulk_out: &mut node.bulk,
            bulk_seq: &mut node.bulk_seq,
        }
    }

    // --- CPU execution -------------------------------------------------

    /// The per-op inner loop. `self` is destructured once so the op loop
    /// works on a single `&mut NodeState` instead of re-indexing per op —
    /// this is the simulation's hottest code.
    fn cpu_step(&mut self, n: usize, now: Cycles, queue: &mut ShardQueue<Event>) {
        let Shard {
            cfg,
            quantum,
            first,
            nodes,
            workload,
            done,
            tracer,
            barrier,
            ..
        } = self;
        let l = n - *first;
        let node = &mut nodes[l];
        node.cpu.step_pending = false;
        if node.cpu.status != CpuStatus::Ready {
            return;
        }
        if node.cpu.clock < now {
            node.cpu.clock = now;
        }
        let mut deadline = now + *quantum;
        loop {
            // Refill the op chunk if exhausted, reusing its allocation.
            if node.cpu.pc >= node.cpu.chunk.len() {
                let mut chunk = std::mem::take(&mut node.cpu.chunk);
                let refilled = workload
                    .lock()
                    .expect("workload poisoned")
                    .next_chunk_into(NodeId::new(n as u16), &mut chunk);
                if refilled {
                    node.cpu.chunk = chunk;
                    node.cpu.pc = 0;
                    if node.cpu.chunk.is_empty() {
                        continue;
                    }
                } else {
                    node.cpu.status = CpuStatus::Done;
                    done[l] = Some(node.cpu.clock);
                    return;
                }
            }

            let op = node.cpu.chunk[node.cpu.pc];
            match op {
                Op::Compute(k) => {
                    let cpu = &mut node.cpu;
                    cpu.clock += Cycles::new(k as u64);
                    cpu.stats.compute_cycles.add(k as u64);
                    cpu.stats.ops.inc();
                    cpu.pc += 1;
                }
                Op::Read { addr, expect } => {
                    if !Self::access(
                        cfg,
                        tracer,
                        node,
                        n,
                        queue,
                        addr,
                        AccessKind::Load,
                        0,
                        expect,
                        false,
                    ) {
                        return;
                    }
                }
                Op::ReadRecord { addr } => {
                    if !Self::access(
                        cfg, tracer, node, n, queue, addr, AccessKind::Load, 0, None, true,
                    ) {
                        return;
                    }
                }
                Op::Write { addr, value } => {
                    if !Self::access(
                        cfg,
                        tracer,
                        node,
                        n,
                        queue,
                        addr,
                        AccessKind::Store,
                        value,
                        None,
                        false,
                    ) {
                        return;
                    }
                }
                Op::Barrier => {
                    let cpu = &mut node.cpu;
                    cpu.pc += 1;
                    cpu.stats.ops.inc();
                    cpu.status = CpuStatus::AtBarrier;
                    cpu.suspended_at = cpu.clock;
                    let arrival = cpu.clock;
                    // Inline (single-shard) mode completes the barrier
                    // here and schedules its own release; windowed mode
                    // returns `None` and lets the driver aggregate
                    // arrivals across shards at window boundaries.
                    if let Some(release_at) = queue.note_barrier_arrival(arrival) {
                        schedule(
                            queue,
                            release_at,
                            Event::BarrierRelease {
                                generation: barrier.generation,
                            },
                        );
                    }
                    return;
                }
                Op::UserCall { op, arg } => {
                    let cpu = &mut node.cpu;
                    cpu.pc += 1;
                    cpu.stats.ops.inc();
                    cpu.status = CpuStatus::BlockedCall;
                    cpu.suspended_at = cpu.clock;
                    let at = cpu.clock + Cycles::new(1);
                    let thread = cpu.thread();
                    schedule(
                        queue,
                        at,
                        Event::NpWork {
                            node: n,
                            work: NpWork::UserCall(thread, UserCall { op, arg }),
                        },
                    );
                    return;
                }
                Op::WaitUntil { until } => {
                    let cpu = &mut node.cpu;
                    cpu.pc += 1;
                    cpu.stats.ops.inc();
                    let target = Cycles::new(until);
                    if target > cpu.clock {
                        cpu.stats.idle_cycles.add((target - cpu.clock).raw());
                        cpu.clock = target;
                    }
                }
            }

            if node.cpu.clock >= deadline {
                let at = node.cpu.clock;
                // Direct execution (WWT-style): if every pending event
                // lies strictly beyond this CPU's clock, the wakeup we
                // are about to schedule would be the very next event
                // popped — so skip the queue round trip and keep
                // executing inline. Under the window scheme the run must
                // additionally stay below the window end: past it, a
                // cross-shard delivery not yet merged could be pending.
                // The machine state and the order of all remaining events
                // are exactly what the scheduled path would produce; only
                // the self-wakeup is elided (and it carries a reserved
                // key, so eliding it perturbs no other event's key),
                // which is why reported cycles are byte-identical.
                if cfg.direct_execution
                    && queue.peek_time().is_none_or(|t| t > at)
                    && queue.window_end().is_none_or(|end| at < end)
                {
                    deadline = at + *quantum;
                    continue;
                }
                let cpu = &mut node.cpu;
                cpu.step_pending = true;
                queue.schedule_wakeup(at, n, Event::CpuStep(n));
                return;
            }
        }
    }

    /// Executes one tag-checked access; returns `false` if the CPU
    /// suspended (fault taken). An associated function over the split
    /// borrows so [`Shard::cpu_step`] can call it while holding `node`.
    #[allow(clippy::too_many_arguments)]
    fn access(
        cfg: &SystemConfig,
        tracer: &mut Option<&'m mut Box<dyn Tracer>>,
        node: &mut NodeState,
        n: usize,
        queue: &mut ShardQueue<Event>,
        addr: VAddr,
        kind: AccessKind,
        value: u64,
        expect: Option<u64>,
        record: bool,
    ) -> bool {
        let outcome = exec_access(
            cfg,
            &mut node.cpu,
            &mut node.np,
            &mut node.mem,
            &node.ptable,
            addr,
            kind,
            value,
        );
        match outcome {
            AccessOutcome::Done { cost, value: loaded } => {
                if cfg.verify_values {
                    if let (Some(expect), Some(got)) = (expect, loaded) {
                        assert_eq!(
                            got,
                            expect,
                            "coherence violation: node {n} read {addr} at cycle {} and \
                             observed {got:#x}, expected {expect:#x}",
                            node.cpu.clock
                        );
                    }
                }
                if record {
                    node.cpu
                        .recorded
                        .push(loaded.expect("a load always produces a value"));
                }
                node.cpu.clock += cost;
                node.cpu.pc += 1;
                true
            }
            AccessOutcome::PageFault(fault, cost) => {
                node.cpu.clock += cost + cfg.typhoon.effective_fault_detect();
                node.cpu.status = CpuStatus::BlockedFault;
                node.cpu.suspended_at = node.cpu.clock;
                let at = node.cpu.clock;
                trace_into(
                    tracer,
                    at,
                    TraceEvent::PageFault {
                        node: NodeId::new(n as u16),
                        addr,
                    },
                );
                schedule(
                    queue,
                    at,
                    Event::NpWork {
                        node: n,
                        work: NpWork::PageFault(fault),
                    },
                );
                false
            }
            AccessOutcome::BlockFault(fault, cost) => {
                node.cpu.clock += cost;
                node.cpu.status = CpuStatus::BlockedFault;
                node.cpu.suspended_at = node.cpu.clock;
                let at = node.cpu.clock;
                trace_into(
                    tracer,
                    at,
                    TraceEvent::BlockFault {
                        node: NodeId::new(n as u16),
                        addr,
                        kind,
                    },
                );
                schedule(
                    queue,
                    at,
                    Event::NpWork {
                        node: n,
                        work: NpWork::BlockFault(fault),
                    },
                );
                false
            }
        }
    }

    // --- NP execution ---------------------------------------------------

    fn try_dispatch(&mut self, n: usize, now: Cycles, queue: &mut ShardQueue<Event>) {
        let np = &mut self.nodes[n - self.first].np;
        if !np.has_work() {
            return;
        }
        if np.busy_until > now {
            if !np.dispatch_pending {
                np.dispatch_pending = true;
                schedule(queue, np.busy_until, Event::NpDispatch(n));
            }
            return;
        }
        self.run_one_handler(n, now, queue);
    }

    fn run_one_handler(&mut self, n: usize, now: Cycles, queue: &mut ShardQueue<Event>) {
        let l = n - self.first;
        let Some(work) = self.nodes[l].np.next_work() else {
            return;
        };
        let start = now + self.cfg.typhoon.effective_dispatch();
        {
            let stats = &mut self.nodes[l].np.stats;
            stats.handlers.inc();
            match &work {
                NpWork::Message(_) | NpWork::Timer(_) => {}
                NpWork::BlockFault(_) => stats.block_faults.inc(),
                NpWork::PageFault(_) => stats.page_faults.inc(),
                NpWork::UserCall(..) => stats.user_calls.inc(),
            }
        }
        let kind = match &work {
            NpWork::Message(m) => HandlerKind::Message(m.handler.raw()),
            NpWork::BlockFault(_) => HandlerKind::BlockFault,
            NpWork::PageFault(_) => HandlerKind::PageFault,
            NpWork::UserCall(..) => HandlerKind::UserCall,
            NpWork::Timer(_) => HandlerKind::Timer,
        };
        self.trace(
            start,
            TraceEvent::HandlerStart {
                node: NodeId::new(n as u16),
                what: kind,
            },
        );
        let mut proto = self.protocols[l].take().expect("protocol present");
        let cost = {
            let mut ctx = self.ctx(n, start, queue);
            match work {
                NpWork::Message(m) => proto.on_message(&mut ctx, m),
                NpWork::BlockFault(f) => proto.on_block_fault(&mut ctx, f),
                NpWork::PageFault(f) => proto.on_page_fault(&mut ctx, f),
                NpWork::UserCall(t, c) => proto.on_user_call(&mut ctx, t, c),
                NpWork::Timer(token) => proto.on_timer(&mut ctx, token),
            }
            let c = ctx.total_cost();
            if c == Cycles::ZERO {
                Cycles::new(1)
            } else {
                c
            }
        };
        self.protocols[l] = Some(proto);
        let node = &mut self.nodes[l];
        let np = &mut node.np;
        np.busy_until = start + cost;
        np.stats
            .busy_cycles
            .add((self.cfg.typhoon.effective_dispatch() + cost).raw());
        // Software Tempest: the handler ran on the primary CPU, stealing
        // its cycles if it was computing.
        if self.cfg.typhoon.np_mode == tt_base::config::NpMode::OnCpu
            && node.cpu.status == crate::cpu::CpuStatus::Ready
            && node.cpu.clock < np.busy_until
        {
            node.cpu.clock = np.busy_until;
        }
        if np.has_work() && !np.dispatch_pending {
            np.dispatch_pending = true;
            let at = np.busy_until;
            schedule(queue, at, Event::NpDispatch(n));
        }
    }

    // --- Packets ---------------------------------------------------------

    fn deliver(&mut self, packet: Packet, now: Cycles, queue: &mut ShardQueue<Event>) {
        let n = packet.dst.index();
        self.trace(
            now,
            TraceEvent::Deliver {
                node: packet.dst,
                handler: packet.handler,
            },
        );
        if packet.handler >= MACHINE_HANDLER_BASE {
            self.deliver_machine_packet(packet, now, queue);
            return;
        }
        self.nodes[n - self.first]
            .np
            .enqueue(NpWork::Message(Message::from_packet(packet)));
        self.try_dispatch(n, now, queue);
    }

    fn deliver_machine_packet(
        &mut self,
        packet: Packet,
        now: Cycles,
        queue: &mut ShardQueue<Event>,
    ) {
        let n = packet.dst.index();
        let l = n - self.first;
        match packet.handler {
            BULK_DATA => {
                let dst_addr = VAddr::new(packet.payload.words()[0]);
                let node = &mut self.nodes[l];
                write_virtual_bytes(&mut node.mem, &node.ptable, dst_addr, packet.payload.data());
                let np = &mut node.np;
                let busy = if np.busy_until > now { np.busy_until } else { now };
                np.busy_until = busy + self.cfg.typhoon.bulk_packet_cycles;
            }
            BULK_DONE => {
                let words = packet.payload.words();
                let (src_base, dst_base, bytes) = (words[0], words[1], words[2]);
                let (notify_src, notify_dst) = (words[3], words[4]);
                if notify_dst != NO_HANDLER {
                    self.nodes[l].np.enqueue(NpWork::Message(Message {
                        src: packet.src,
                        vn: VirtualNet::Response,
                        handler: HandlerId(notify_dst as u32),
                        payload: Payload::args(&[src_base, dst_base, bytes]),
                    }));
                    self.try_dispatch(n, now, queue);
                }
                if notify_src != NO_HANDLER {
                    let ack = Packet {
                        src: packet.dst,
                        dst: packet.src,
                        vn: VirtualNet::Response,
                        handler: BULK_ACK,
                        payload: Payload::args(&[src_base, dst_base, bytes, notify_src]),
                    };
                    let at = self.network.send(now, &ack);
                    schedule(queue, at, Event::Deliver(ack));
                }
            }
            BULK_ACK => {
                let words = packet.payload.words();
                self.nodes[l].np.enqueue(NpWork::Message(Message {
                    src: packet.src,
                    vn: VirtualNet::Response,
                    handler: HandlerId(words[3] as u32),
                    payload: Payload::args(&[words[0], words[1], words[2]]),
                }));
                self.try_dispatch(n, now, queue);
            }
            other => panic!("unknown machine handler id {other:#x}"),
        }
    }

    fn bulk_inject(&mut self, n: usize, id: u64, now: Cycles, queue: &mut ShardQueue<Event>) {
        let l = n - self.first;
        let Some(pos) = self.nodes[l].bulk.iter().position(|b| b.id == id) else {
            return;
        };
        let busy_until = self.nodes[l].np.busy_until;
        if busy_until > now {
            schedule(queue, busy_until, Event::BulkInject { node: n, id });
            return;
        }
        let (packet, done_packet) = {
            let node = &mut self.nodes[l];
            let b = &mut node.bulk[pos];
            let req = b.request;
            let remaining = req.bytes - b.offset;
            let chunk = remaining.min(tt_tempest::bulk::BULK_PACKET_DATA_BYTES);
            let data = read_virtual_bytes(
                &node.mem,
                &node.ptable,
                req.src_addr.offset(b.offset as u64),
                chunk,
            );
            let packet = Packet {
                src: NodeId::new(n as u16),
                dst: req.dst,
                vn: VirtualNet::Request,
                handler: BULK_DATA,
                payload: Payload::with_data(&[req.dst_addr.raw() + b.offset as u64], &data),
            };
            b.offset += chunk;
            node.np.stats.bulk_packets.inc();
            let done = if b.offset == req.bytes {
                let notify_src = req
                    .notify_src
                    .map(|h| h.raw() as u64)
                    .unwrap_or(NO_HANDLER);
                let notify_dst = req
                    .notify_dst
                    .map(|h| h.raw() as u64)
                    .unwrap_or(NO_HANDLER);
                Some(Packet {
                    src: NodeId::new(n as u16),
                    dst: req.dst,
                    vn: VirtualNet::Request,
                    handler: BULK_DONE,
                    payload: Payload::args(&[
                        req.src_addr.raw(),
                        req.dst_addr.raw(),
                        req.bytes as u64,
                        notify_src,
                        notify_dst,
                    ]),
                })
            } else {
                None
            };
            (packet, done)
        };
        let at = self.network.send(now, &packet);
        schedule(queue, at, Event::Deliver(packet));
        let np = &mut self.nodes[l].np;
        np.busy_until = now + self.cfg.typhoon.bulk_packet_cycles;
        if let Some(done) = done_packet {
            let at = self.network.send(np.busy_until, &done);
            schedule(queue, at, Event::Deliver(done));
            self.nodes[l].bulk.remove(pos);
        } else {
            let at = np.busy_until;
            schedule(queue, at, Event::BulkInject { node: n, id });
        }
    }

    /// Releases this shard's own nodes from the barrier at `at`. Runs as
    /// the `BarrierRelease` event handler in sequential mode and as the
    /// window driver's release hook in parallel mode — each shard wakes
    /// only the nodes it owns, and the wakeups are keyed under each
    /// node's *own* origin counter (deterministic in both modes, since a
    /// blocked node's counter cannot advance concurrently).
    fn release_local(&mut self, at: Cycles, generation: u64, queue: &mut ShardQueue<Event>) {
        assert_eq!(generation, self.barrier.generation, "stale barrier release");
        self.barrier.generation += 1;
        self.barrier.releases += 1;
        self.trace(at, TraceEvent::BarrierRelease);
        for l in 0..self.nodes.len() {
            let n = self.first + l;
            let cpu = &mut self.nodes[l].cpu;
            assert_eq!(cpu.status, CpuStatus::AtBarrier, "node {n} missed the barrier");
            cpu.stats
                .barrier_wait_cycles
                .add((at - cpu.suspended_at).raw());
            cpu.status = CpuStatus::Ready;
            cpu.clock = at;
            if !cpu.step_pending {
                cpu.step_pending = true;
                queue.set_origin(n);
                schedule(queue, at, Event::CpuStep(n));
            }
        }
    }
}

/// Records a trace event through an optional tracer; the out-of-line
/// equivalent of [`Shard::trace`] for code holding split borrows.
#[inline]
fn trace_into(tracer: &mut Option<&mut Box<dyn Tracer>>, at: Cycles, event: TraceEvent) {
    if let Some(t) = tracer {
        t.record(TraceRecord { at, event });
    }
}

/// Reads `len` bytes starting at virtual `addr` (word-aligned) through the
/// node's page table.
fn read_virtual_bytes(mem: &NodeMemory, pt: &PageTable, addr: VAddr, len: usize) -> Vec<u8> {
    assert_eq!(addr.raw() % WORD_BYTES as u64, 0, "bulk source unaligned");
    assert_eq!(len % WORD_BYTES, 0, "bulk length unaligned");
    let mut out = Vec::with_capacity(len);
    for w in 0..len / WORD_BYTES {
        let va = addr.offset((w * WORD_BYTES) as u64);
        let pa = pt
            .translate_addr(va)
            .unwrap_or_else(|| panic!("bulk read from unmapped address {va}"));
        out.extend_from_slice(&mem.read_word(pa).to_le_bytes());
    }
    out
}

/// Writes bytes starting at virtual `addr` (word-aligned) through the
/// node's page table.
fn write_virtual_bytes(mem: &mut NodeMemory, pt: &PageTable, addr: VAddr, data: &[u8]) {
    assert_eq!(addr.raw() % WORD_BYTES as u64, 0, "bulk destination unaligned");
    assert_eq!(data.len() % WORD_BYTES, 0, "bulk length unaligned");
    for (w, chunk) in data.chunks_exact(WORD_BYTES).enumerate() {
        let va = addr.offset((w * WORD_BYTES) as u64);
        let pa = pt
            .translate_addr(va)
            .unwrap_or_else(|| panic!("bulk write to unmapped address {va}"));
        mem.write_word(pa, u64::from_le_bytes(chunk.try_into().unwrap()));
    }
}
