//! Structured execution tracing.
//!
//! Debugging a user-level protocol means reconstructing an interleaving
//! of faults, handler dispatches, message deliveries, and resumes. A
//! [`Tracer`] installed with
//! [`TyphoonMachine::set_tracer`](crate::TyphoonMachine::set_tracer)
//! receives every such event with its simulated timestamp. The
//! [`VecTracer`] collector is convenient in tests; a custom closure can
//! stream events to stderr or filter for one address.

use std::fmt;

use tt_base::{Cycles, NodeId, VAddr};
use tt_mem::AccessKind;

/// One machine-level event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A computation thread took a page fault.
    PageFault {
        /// Faulting node.
        node: NodeId,
        /// Faulting address.
        addr: VAddr,
    },
    /// A computation thread took a block access fault.
    BlockFault {
        /// Faulting node.
        node: NodeId,
        /// Faulting address.
        addr: VAddr,
        /// Load or store.
        kind: AccessKind,
    },
    /// The NP began executing a handler.
    HandlerStart {
        /// Executing node.
        node: NodeId,
        /// Work description: `"message(<id>)"`, `"block-fault"`,
        /// `"page-fault"`, or `"user-call"`.
        what: HandlerKind,
    },
    /// A packet arrived at its destination NP.
    Deliver {
        /// Destination node.
        node: NodeId,
        /// Handler id named by the packet.
        handler: u32,
    },
    /// The barrier released all processors.
    BarrierRelease,
}

/// What kind of work a handler invocation services.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HandlerKind {
    /// An incoming active message with the given handler id.
    Message(u32),
    /// A block access fault.
    BlockFault,
    /// A page fault.
    PageFault,
    /// An explicit application call.
    UserCall,
    /// A protocol timer firing.
    Timer,
}

impl fmt::Display for HandlerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandlerKind::Message(id) => write!(f, "message({id:#x})"),
            HandlerKind::BlockFault => f.write_str("block-fault"),
            HandlerKind::PageFault => f.write_str("page-fault"),
            HandlerKind::UserCall => f.write_str("user-call"),
            HandlerKind::Timer => f.write_str("timer"),
        }
    }
}

/// A timestamped trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of the event.
    pub at: Cycles,
    /// The event.
    pub event: TraceEvent,
}

/// Receives trace records as the simulation runs.
///
/// `Send` so the machine's shard views (which carry the optional tracer)
/// can cross threads; tracing itself still requires `sim_threads = 1`,
/// where a single total event order exists to be observed.
pub trait Tracer: Send {
    /// Called once per machine-level event, in simulated-time order.
    fn record(&mut self, record: TraceRecord);
}

impl<F: FnMut(TraceRecord) + Send> Tracer for F {
    fn record(&mut self, record: TraceRecord) {
        self(record)
    }
}

/// A tracer that collects every record into a vector.
#[derive(Debug, Default)]
pub struct VecTracer {
    /// The collected records, in simulated-time order.
    pub records: Vec<TraceRecord>,
}

impl VecTracer {
    /// An empty collector.
    pub fn new() -> Self {
        VecTracer::default()
    }

    /// Events of one node, in order.
    pub fn for_node(&self, node: NodeId) -> Vec<&TraceRecord> {
        self.records
            .iter()
            .filter(|r| match &r.event {
                TraceEvent::PageFault { node: n, .. }
                | TraceEvent::BlockFault { node: n, .. }
                | TraceEvent::HandlerStart { node: n, .. }
                | TraceEvent::Deliver { node: n, .. } => *n == node,
                TraceEvent::BarrierRelease => false,
            })
            .collect()
    }
}

impl Tracer for VecTracer {
    fn record(&mut self, record: TraceRecord) {
        self.records.push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handler_kind_display() {
        assert_eq!(HandlerKind::Message(0x10).to_string(), "message(0x10)");
        assert_eq!(HandlerKind::BlockFault.to_string(), "block-fault");
    }

    #[test]
    fn vec_tracer_filters_by_node() {
        let mut t = VecTracer::new();
        t.record(TraceRecord {
            at: Cycles::new(1),
            event: TraceEvent::Deliver {
                node: NodeId::new(0),
                handler: 1,
            },
        });
        t.record(TraceRecord {
            at: Cycles::new(2),
            event: TraceEvent::BarrierRelease,
        });
        t.record(TraceRecord {
            at: Cycles::new(3),
            event: TraceEvent::Deliver {
                node: NodeId::new(1),
                handler: 2,
            },
        });
        assert_eq!(t.for_node(NodeId::new(0)).len(), 1);
        assert_eq!(t.for_node(NodeId::new(1)).len(), 1);
        assert_eq!(t.records.len(), 3);
    }
}
