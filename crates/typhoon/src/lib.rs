//! **Typhoon** — a machine implementing the Tempest interface
//! (paper Section 5).
//!
//! A Typhoon node is a commodity workstation-class processor plus one
//! custom device: the **network interface processor (NP)**, a
//! fully-programmable user-level processor sitting on the memory bus.
//! The NP
//!
//! - snoops the CPU's bus transactions and enforces fine-grain access
//!   tags via a **reverse TLB** (RTLB) indexed by physical page number;
//! - suspends faulting accesses ("relinquish and retry" + bus-request
//!   masking) and deposits fault records in the **BAF buffer**;
//! - runs user-level protocol handlers via a hardware-assisted,
//!   non-preemptive dispatch loop (priority: response network, then
//!   faults, then request network, then application calls);
//! - sends and receives active messages and packetizes bulk transfers.
//!
//! This crate models all of that with the event-driven engine from
//! `tt-sim`, executing a machine-independent workload op stream
//! (`tt_base::workload`) against a user-level [`Protocol`]
//! (`tt_tempest::Protocol`). Timing follows Table 2 of the paper; see
//! `tt_base::config`.
//!
//! Like the Wisconsin Wind Tunnel the paper used, CPU execution is
//! *quantum-batched*: a CPU executes up to one network latency of work
//! per event, so cross-processor effects are observed with at most one
//! quantum of skew — the same conservative-window argument WWT makes.
//! Fault/handler/resume paths are exact.
//!
//! [`Protocol`]: tt_tempest::Protocol

pub mod cpu;
pub mod ctx;
pub mod machine;
pub mod np;
pub mod trace;

pub use machine::{Event, RunResult, TyphoonMachine};
pub use trace::{TraceEvent, TraceRecord, Tracer, VecTracer};
