//! Typhoon's implementation of the Tempest context.
//!
//! A [`NodeCtx`] is constructed for the duration of one protocol handler
//! invocation. It accumulates the handler's cost (charged instructions,
//! NP cache and TLB delays, block transfers) so that messages sent and
//! threads resumed *during* the handler carry the correct timestamps —
//! the paper's observation that "the critical path is even shorter, since
//! most bookkeeping is performed after a message is sent" falls out
//! naturally: a handler that charges bookkeeping instructions after its
//! `send` does not delay the message.

use tt_base::addr::{Ppn, VAddr, Vpn, BLOCK_BYTES};
use tt_base::config::SystemConfig;
use tt_base::{Cycles, NodeId};
use tt_mem::cache::Probe;
use tt_mem::{NodeMemory, PageMeta, PageTable, Tag};
use tt_net::{Network, Packet, Payload, VirtualNet};
use tt_tempest::{BulkRequest, HandlerId, TempestCtx, TempestError, ThreadId};
use tt_sim::ShardQueue;

use crate::cpu::{CpuState, CpuStatus};
use crate::machine::{BulkState, Event};
use crate::np::NpState;

/// The per-handler Tempest context (see module docs).
pub struct NodeCtx<'a> {
    pub(crate) id: NodeId,
    pub(crate) nodes: usize,
    pub(crate) cfg: &'a SystemConfig,
    /// Time the handler began executing (after dispatch overhead).
    pub(crate) start: Cycles,
    /// Cost accumulated so far by this handler.
    pub(crate) cost: Cycles,
    pub(crate) cpu: &'a mut CpuState,
    pub(crate) np: &'a mut NpState,
    pub(crate) mem: &'a mut NodeMemory,
    pub(crate) ptable: &'a mut PageTable,
    pub(crate) network: &'a mut Network,
    pub(crate) queue: &'a mut ShardQueue<Event>,
    pub(crate) bulk_out: &'a mut Vec<BulkState>,
    pub(crate) bulk_seq: &'a mut u64,
}

impl NodeCtx<'_> {
    /// Total handler cost accumulated (the machine uses this to set the
    /// NP busy time).
    pub(crate) fn total_cost(&self) -> Cycles {
        self.cost
    }

    /// Attempts the faulted access the CPU was suspended on (see
    /// [`TempestCtx::resume`]): completes it if the tags now permit,
    /// or re-faults (the Stache page-fault handler resumes expecting a
    /// block fault, so a refault here is normal, not an error).
    fn retry_pending_access(&mut self) {
        use tt_base::workload::Op;
        let op = match self.cpu.chunk.get(self.cpu.pc) {
            Some(op) => *op,
            None => return,
        };
        let (addr, kind, value, expect, record) = match op {
            Op::Read { addr, expect } => (addr, tt_mem::AccessKind::Load, 0, expect, false),
            Op::ReadRecord { addr } => (addr, tt_mem::AccessKind::Load, 0, None, true),
            Op::Write { addr, value } => (addr, tt_mem::AccessKind::Store, value, None, false),
            _ => return,
        };
        match crate::cpu::exec_access(
            self.cfg, self.cpu, self.np, self.mem, self.ptable, addr, kind, value,
        ) {
            crate::cpu::AccessOutcome::Done { cost, value: loaded } => {
                if self.cfg.verify_values {
                    if let (Some(expect), Some(got)) = (expect, loaded) {
                        assert_eq!(
                            got, expect,
                            "coherence violation: node {} read {addr} on retry",
                            self.id
                        );
                    }
                }
                if record {
                    self.cpu
                        .recorded
                        .push(loaded.expect("a load always produces a value"));
                }
                self.cpu.clock += cost;
                self.cpu.pc += 1;
            }
            crate::cpu::AccessOutcome::PageFault(fault, cost) => {
                self.cpu.clock += cost + self.cfg.typhoon.effective_fault_detect();
                self.cpu.status = CpuStatus::BlockedFault;
                self.cpu.suspended_at = self.cpu.clock;
                let at = self.cpu.clock;
                crate::machine::schedule(self.queue, 
                    at,
                    Event::NpWork {
                        node: self.id.index(),
                        work: crate::np::NpWork::PageFault(fault),
                    },
                );
            }
            crate::cpu::AccessOutcome::BlockFault(fault, cost) => {
                self.cpu.clock += cost;
                self.cpu.status = CpuStatus::BlockedFault;
                self.cpu.suspended_at = self.cpu.clock;
                let at = self.cpu.clock;
                crate::machine::schedule(self.queue, 
                    at,
                    Event::NpWork {
                        node: self.id.index(),
                        work: crate::np::NpWork::BlockFault(fault),
                    },
                );
            }
        }
    }

    fn translate_or_die(&self, addr: VAddr) -> tt_base::addr::PAddr {
        self.ptable.translate_addr(addr).unwrap_or_else(|| {
            panic!(
                "node {}: NP access to unmapped address {addr} — an NP page \
                 fault is a user programming error (paper Section 5.1)",
                self.id
            )
        })
    }

    /// Charges an NP forward-TLB access for a handler memory operation.
    fn charge_np_tlb(&mut self, vpn: Vpn) {
        if self.np.tlb.access(vpn) {
            self.cost += Cycles::new(1);
        } else {
            self.cost += self.cfg.typhoon.np_tlb_miss;
        }
    }

    /// Charges an RTLB access for a tag operation.
    fn charge_rtlb(&mut self, ppn: Ppn) {
        if self.np.rtlb.access(ppn) {
            self.cost += Cycles::new(1);
        } else {
            self.cost += self.cfg.typhoon.np_tlb_miss;
        }
    }

    /// Keeps the primary CPU's cache consistent with a new tag value: a
    /// block the CPU may no longer write is downgraded, a block it may no
    /// longer access is purged (the NP issues the MBus coherence
    /// transaction).
    fn enforce_cache_consistency(&mut self, paddr: tt_base::addr::PAddr, tag: Tag) {
        let key = paddr.raw() / BLOCK_BYTES as u64;
        match tag {
            Tag::ReadWrite => {}
            Tag::ReadOnly => {
                if self.cpu.cache.peek(key) == Probe::HitOwned {
                    self.cpu.cache.set_owned(key, false);
                }
            }
            Tag::Invalid | Tag::Busy => {
                self.cpu.cache.invalidate(key);
            }
        }
    }
}

impl TempestCtx for NodeCtx<'_> {
    fn node(&self) -> NodeId {
        self.id
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn now(&self) -> Cycles {
        self.start + self.cost
    }

    fn charge(&mut self, instructions: u64) {
        let scaled = self.cfg.scaled_handler_instr(instructions);
        self.cost += Cycles::new(scaled);
        self.np.stats.instructions.add(scaled);
    }

    fn protocol_data_access(&mut self, key: u64) {
        match self.np.dcache.probe(key) {
            Probe::Miss => {
                self.cost += self.cfg.timing.local_miss;
                self.np.dcache.fill(key, true);
            }
            _ => self.cost += Cycles::new(1),
        }
    }

    fn send(&mut self, dst: NodeId, vn: VirtualNet, handler: HandlerId, payload: Payload) {
        let packet = Packet {
            src: self.id,
            dst,
            vn,
            handler: handler.raw(),
            payload,
        };
        // `transmit` applies the installed fault schedule (if any) and
        // yields zero, one, or two delivery times; with no fault plan it
        // is exactly `Network::send`.
        let deliveries = self.network.transmit(self.now(), &packet);
        for deliver_at in deliveries.iter() {
            crate::machine::schedule(self.queue, deliver_at, Event::Deliver(packet.clone()));
        }
    }

    fn set_timer(&mut self, at: Cycles, token: u64) {
        // The firing is ordinary NP work on this node: same-shard, so it
        // needs no lookahead, and it participates in the deterministic
        // event order like every message delivery.
        let at = at.max(self.now());
        crate::machine::schedule(self.queue,
            at,
            Event::NpWork {
                node: self.id.index(),
                work: crate::np::NpWork::Timer(token),
            },
        );
    }

    fn bulk_transfer(&mut self, request: BulkRequest) {
        assert_eq!(request.bytes % 8, 0, "bulk transfers must be word-aligned");
        *self.bulk_seq += 1;
        let id = *self.bulk_seq;
        self.bulk_out.push(BulkState {
            id,
            request,
            offset: 0,
        });
        crate::machine::schedule(self.queue, 
            self.now(),
            Event::BulkInject {
                node: self.id.index(),
                id,
            },
        );
    }

    fn alloc_page(&mut self) -> Ppn {
        self.mem.alloc()
    }

    fn free_page(&mut self, ppn: Ppn) {
        self.mem.free(ppn);
    }

    fn map_page(&mut self, vpn: Vpn, ppn: Ppn) -> Result<(), TempestError> {
        self.ptable.map(vpn, ppn)?;
        self.mem.frame_mut(ppn).meta.vpn = Some(vpn);
        Ok(())
    }

    fn unmap_page(&mut self, vpn: Vpn) -> Result<Ppn, TempestError> {
        let ppn = self.ptable.unmap(vpn)?;
        // Stale translations and tag residency must be flushed, and any
        // CPU-cached blocks of the frame purged (the frame is about to be
        // re-purposed).
        self.cpu.tlb.flush(vpn);
        self.np.tlb.flush(vpn);
        self.np.rtlb.flush(ppn);
        let first_block = ppn.base().raw() / BLOCK_BYTES as u64;
        self.cpu
            .cache
            .invalidate_range(first_block..first_block + tt_base::addr::BLOCKS_PER_PAGE as u64);
        self.mem.frame_mut(ppn).meta.vpn = None;
        Ok(ppn)
    }

    fn translate(&self, vpn: Vpn) -> Option<Ppn> {
        self.ptable.translate(vpn)
    }

    fn page_meta(&self, vpn: Vpn) -> Option<PageMeta> {
        self.ptable.translate(vpn).map(|p| self.mem.frame(p).meta)
    }

    fn set_page_meta(&mut self, vpn: Vpn, meta: PageMeta) {
        let ppn = self
            .ptable
            .translate(vpn)
            .unwrap_or_else(|| panic!("set_page_meta on unmapped page {vpn:?}"));
        let mut meta = meta;
        meta.vpn = Some(vpn);
        self.mem.frame_mut(ppn).meta = meta;
    }

    fn allocated_bytes(&self) -> usize {
        self.mem.allocated_bytes()
    }

    fn read_tag(&self, addr: VAddr) -> Tag {
        let paddr = self.translate_or_die(addr);
        self.mem.tag(paddr)
    }

    fn set_tag(&mut self, addr: VAddr, tag: Tag) {
        let paddr = self.translate_or_die(addr);
        self.charge_rtlb(paddr.page());
        self.mem.set_tag(paddr, tag);
        self.enforce_cache_consistency(paddr, tag);
    }

    fn set_page_tags(&mut self, vpn: Vpn, tag: Tag) {
        let ppn = self
            .ptable
            .translate(vpn)
            .unwrap_or_else(|| panic!("set_page_tags on unmapped page {vpn:?}"));
        self.charge_rtlb(ppn);
        self.mem.frame_mut(ppn).set_all_tags(tag);
        if tag != Tag::ReadWrite {
            let first = ppn.base();
            for b in 0..tt_base::addr::BLOCKS_PER_PAGE {
                self.enforce_cache_consistency(first.offset((b * BLOCK_BYTES) as u64), tag);
            }
        }
    }

    fn force_read_word(&mut self, addr: VAddr) -> u64 {
        self.charge_np_tlb(addr.page());
        self.cost += Cycles::new(1);
        let paddr = self.translate_or_die(addr);
        self.mem.read_word(paddr)
    }

    fn force_write_word(&mut self, addr: VAddr, value: u64) {
        self.charge_np_tlb(addr.page());
        self.cost += Cycles::new(1);
        let paddr = self.translate_or_die(addr);
        self.mem.write_word(paddr, value);
        // The block-transfer path is coherent with the CPU cache: purge
        // any (now stale) CPU copy.
        self.cpu.cache.invalidate(paddr.raw() / BLOCK_BYTES as u64);
    }

    fn force_read_block(&mut self, addr: VAddr) -> [u8; BLOCK_BYTES] {
        self.charge_np_tlb(addr.page());
        self.cost += self.cfg.typhoon.np_block_xfer;
        let paddr = self.translate_or_die(addr);
        self.mem.read_block(paddr)
    }

    fn force_write_block(&mut self, addr: VAddr, block: &[u8; BLOCK_BYTES]) {
        self.charge_np_tlb(addr.page());
        self.cost += self.cfg.typhoon.np_block_xfer;
        let paddr = self.translate_or_die(addr);
        self.mem.write_block(paddr, block);
        self.cpu.cache.invalidate(paddr.raw() / BLOCK_BYTES as u64);
    }

    fn resume(&mut self, thread: ThreadId) {
        assert_eq!(
            thread.node(),
            self.id,
            "resume of a non-local thread: handlers can only resume their own node's computation"
        );
        assert!(
            matches!(
                self.cpu.status,
                CpuStatus::BlockedFault | CpuStatus::BlockedCall
            ),
            "resume of a thread that is not suspended (status {:?})",
            self.cpu.status
        );
        let resume_at = self.now() + Cycles::new(1);
        let stalled = resume_at - self.cpu.suspended_at;
        let was_fault = self.cpu.status == CpuStatus::BlockedFault;
        match self.cpu.status {
            CpuStatus::BlockedFault => self.cpu.stats.fault_stall_cycles.add(stalled.raw()),
            CpuStatus::BlockedCall => self.cpu.stats.call_stall_cycles.add(stalled.raw()),
            _ => unreachable!(),
        }
        self.cpu.status = CpuStatus::Ready;
        self.cpu.clock = if self.cpu.clock > resume_at {
            self.cpu.clock
        } else {
            resume_at
        };

        // Resuming unmasks the CPU's nacked bus transaction, which
        // completes *before* the NP dispatches another handler — so the
        // retried access is attempted right here. Without this, a recall
        // or invalidation queued behind the current handler would
        // systematically steal the block before the retry, and two
        // writers hammering one block could livelock (real Typhoon gives
        // the pending transaction the same priority).
        if was_fault {
            self.retry_pending_access();
        }
        if self.cpu.status == CpuStatus::Ready && !self.cpu.step_pending {
            self.cpu.step_pending = true;
            let at = self.cpu.clock;
            crate::machine::schedule(self.queue, at, Event::CpuStep(self.id.index()));
        }
    }
}
