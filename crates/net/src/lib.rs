//! Point-to-point interconnect model.
//!
//! Typhoon's network (Section 5) is based on the Thinking Machines CM-5
//! network, with a larger maximum packet payload (twenty 32-bit words) and
//! **two independent virtual networks** so that a pure request/response
//! protocol is deadlock-free: requests travel on the low-priority net and
//! responses on the high-priority net, and response handlers can never be
//! starved by request handlers.
//!
//! Following the paper's methodology, the default model charges a constant
//! network latency (Table 2: 11 cycles) and does not model contention.
//! Big-machine mode (DESIGN.md §11) replaces the constant pipe with a
//! routed [`Topology`]: each packet traverses a deterministic
//! dimension-order (mesh) or up-down (fat tree) route, and every link
//! keeps a `next_free` occupancy cycle that serializes packets by wire
//! size — so hot-home saturation shows up as queuing delay. Routes and
//! queuing depend only on per-source state owned by the sending node's
//! simulator shard, which keeps routed runs bit-identical at every
//! `sim_threads`/`sim_shards`/`jobs`/`window_policy` setting.
//!
//! The network is a *passive* component: [`Network::send`] validates the
//! packet, records statistics, and returns the delivery time; the owning
//! machine schedules its own delivery event.

use tt_base::addr::BLOCK_BYTES;
use tt_base::stats::Counter;
use tt_base::{mix64, Cycles, FaultSpec, FxHashMap, NodeId, Topology};

/// The two independent virtual networks (Section 5.1).
///
/// The scheduler gives [`VirtualNet::Request`] lower priority, so request
/// handlers cannot starve response handlers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VirtualNet {
    /// Low-priority net carrying protocol requests.
    Request,
    /// High-priority net carrying protocol responses.
    Response,
}

impl VirtualNet {
    /// Index for per-net statistics arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            VirtualNet::Request => 0,
            VirtualNet::Response => 1,
        }
    }
}

/// Maximum packet payload in bytes: twenty 32-bit words (Section 5),
/// vs. the CM-5's five.
pub const MAX_PACKET_BYTES: usize = 80;

/// Bytes charged for the handler word at the head of every message.
pub const HANDLER_WORD_BYTES: usize = 4;

/// Bytes charged per 64-bit argument word.
pub const ARG_WORD_BYTES: usize = 8;

/// Maximum argument words a payload can carry inline. Nine words plus the
/// handler word fills the 80-byte packet; every protocol message in the
/// workspace uses at most six (bulk-done plus the transport's sequence
/// word).
pub const MAX_ARG_WORDS: usize = 9;

/// Maximum data-carrier bytes (the paper's per-packet maximum: one bulk
/// chunk or two coherence blocks' worth).
pub const MAX_DATA_BYTES: usize = 64;

/// A message payload: argument words plus an optional data carrier.
///
/// By Active Messages convention the *receiver's handler* is named
/// separately (see `tt-tempest`); the payload here is everything after the
/// handler word. The data carrier holds coherence-block or bulk-transfer
/// bytes (at most [`MAX_DATA_BYTES`], the paper's maximum per packet).
///
/// The representation is fully inline — fixed arrays plus two length
/// bytes — so constructing, cloning, and queuing a payload never touches
/// the heap. Protocol hot paths (one payload per message, retransmit
/// buffers, reorder queues) used to pay two `Vec` allocations per
/// message; the microbench in `tt-bench` pins the drop. Inactive array
/// tail bytes are always zero, so the derived `Eq`/`Ord`/`Hash` agree
/// with logical equality of the active slices.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Payload {
    nwords: u8,
    ndata: u8,
    words: [u64; MAX_ARG_WORDS],
    data: [u8; MAX_DATA_BYTES],
}

impl Default for Payload {
    fn default() -> Self {
        Payload {
            nwords: 0,
            ndata: 0,
            words: [0; MAX_ARG_WORDS],
            data: [0; MAX_DATA_BYTES],
        }
    }
}

impl Payload {
    /// An empty payload.
    pub fn new() -> Self {
        Payload::default()
    }

    /// A payload of argument words only.
    ///
    /// # Panics
    ///
    /// Panics if `words` exceeds [`MAX_ARG_WORDS`].
    pub fn args(words: &[u64]) -> Self {
        Payload::with_data(words, &[])
    }

    /// A payload of argument words plus raw data bytes.
    ///
    /// # Panics
    ///
    /// Panics if `words` exceeds [`MAX_ARG_WORDS`] or `data` exceeds
    /// [`MAX_DATA_BYTES`].
    pub fn with_data(words: &[u64], data: &[u8]) -> Self {
        assert!(
            words.len() <= MAX_ARG_WORDS,
            "payload of {} argument words exceeds the {}-word maximum",
            words.len(),
            MAX_ARG_WORDS
        );
        assert!(
            data.len() <= MAX_DATA_BYTES,
            "payload of {} data bytes exceeds the {}-byte maximum",
            data.len(),
            MAX_DATA_BYTES
        );
        let mut w = [0u64; MAX_ARG_WORDS];
        w[..words.len()].copy_from_slice(words);
        let mut d = [0u8; MAX_DATA_BYTES];
        d[..data.len()].copy_from_slice(data);
        Payload {
            nwords: words.len() as u8,
            ndata: data.len() as u8,
            words: w,
            data: d,
        }
    }

    /// A payload of argument words plus one coherence block of data.
    pub fn with_block(words: &[u64], block: [u8; BLOCK_BYTES]) -> Self {
        Payload::with_data(words, &block)
    }

    /// The active argument words.
    pub fn words(&self) -> &[u64] {
        &self.words[..self.nwords as usize]
    }

    /// The active data-carrier bytes.
    pub fn data(&self) -> &[u8] {
        &self.data[..self.ndata as usize]
    }

    /// Appends one argument word (the reliable transport's sequence word).
    ///
    /// # Panics
    ///
    /// Panics if the payload already carries [`MAX_ARG_WORDS`] words.
    pub fn push_word(&mut self, w: u64) {
        assert!(
            (self.nwords as usize) < MAX_ARG_WORDS,
            "payload exceeds the {MAX_ARG_WORDS}-word maximum"
        );
        self.words[self.nwords as usize] = w;
        self.nwords += 1;
    }

    /// Removes and returns the last argument word (the receive side of
    /// [`Payload::push_word`]), or `None` if there are no words.
    pub fn pop_word(&mut self) -> Option<u64> {
        if self.nwords == 0 {
            return None;
        }
        self.nwords -= 1;
        let w = self.words[self.nwords as usize];
        // Keep inactive tail bytes zero so derived equality stays logical.
        self.words[self.nwords as usize] = 0;
        Some(w)
    }

    /// Total wire size in bytes, including the handler word.
    pub fn wire_bytes(&self) -> usize {
        HANDLER_WORD_BYTES + ARG_WORD_BYTES * self.nwords as usize + self.ndata as usize
    }

    /// Interprets the data carrier as one coherence block.
    ///
    /// # Panics
    ///
    /// Panics if the payload does not carry exactly one block.
    pub fn block(&self) -> [u8; BLOCK_BYTES] {
        self.data()
            .try_into()
            .expect("payload does not carry exactly one block")
    }
}

/// A packet in flight between two nodes.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Packet {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Which virtual network carries the packet.
    pub vn: VirtualNet,
    /// Receive-handler identifier (the paper's "handler PC" head word).
    pub handler: u32,
    /// Everything after the handler word.
    pub payload: Payload,
}

impl Packet {
    /// Total wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        self.payload.wire_bytes()
    }
}

/// Per-virtual-network traffic statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets sent on each virtual network.
    pub packets: [Counter; 2],
    /// Payload bytes sent on each virtual network.
    pub bytes: [Counter; 2],
    /// Packets a node sent to itself (short-circuited, never on the wire).
    pub local_packets: Counter,
    /// Wire packets the fault plan dropped outright.
    pub dropped: Counter,
    /// Extra wire copies the fault plan injected (duplications).
    pub duplicated: Counter,
    /// Wire copies whose checksum the receiver rejected (detected
    /// corruption; behaves like a drop at the protocol level).
    pub corrupt_dropped: Counter,
    /// Wire copies lost to a transient link partition.
    pub partition_lost: Counter,
}

impl NetStats {
    /// Total packets that crossed the wire.
    pub fn total_packets(&self) -> u64 {
        self.packets[0].get() + self.packets[1].get()
    }

    /// Total bytes that crossed the wire.
    pub fn total_bytes(&self) -> u64 {
        self.bytes[0].get() + self.bytes[1].get()
    }

    /// Adds another accounting's counters into this one. The parallel
    /// simulator gives each shard its own [`Network`] instance (send-side
    /// state is per-source-node, so shards never share it) and folds the
    /// statistics back together at the end of the run.
    pub fn absorb(&mut self, other: &NetStats) {
        for vn in 0..2 {
            self.packets[vn].add(other.packets[vn].get());
            self.bytes[vn].add(other.bytes[vn].get());
        }
        self.local_packets.add(other.local_packets.get());
        self.dropped.add(other.dropped.get());
        self.duplicated.add(other.duplicated.get());
        self.corrupt_dropped.add(other.corrupt_dropped.get());
        self.partition_lost.add(other.partition_lost.get());
    }

    /// Total wire copies the fault plan prevented from arriving.
    pub fn total_lost(&self) -> u64 {
        self.dropped.get() + self.corrupt_dropped.get() + self.partition_lost.get()
    }
}

/// Cycles one hop takes through a routed topology: a switch traversal
/// plus the wire. The minimum cross-node delivery is one hop, so this is
/// also the conservative PDES lookahead for routed topologies.
pub const HOP_LATENCY: u64 = 3;

/// Normalized routing parameters (derived defaults resolved).
#[derive(Clone, Copy, Debug)]
enum Route {
    Mesh { width: usize },
    Tree { arity: usize },
}

/// Link-id tag bits for fat-tree edges (mesh links use the low id space:
/// `node * 4 + direction`).
const TREE_UP: u64 = 1 << 40;
const TREE_DOWN: u64 = 2 << 40;

/// Visits every directed link of the deterministic route `src -> dst` in
/// traversal order, passing `(link id, capacity divisor)`. Mesh routes are
/// dimension-order (X then Y); fat-tree routes climb to the lowest common
/// ancestor and descend. The capacity divisor models the fat tree's
/// fattening: a level-`l` edge aggregates `arity^l` leaf links, so
/// serialization shrinks by that factor (mesh links are always 1).
fn for_each_hop(route: Route, src: usize, dst: usize, mut f: impl FnMut(u64, u64)) {
    match route {
        Route::Mesh { width } => {
            let (mut x, mut y) = (src % width, src / width);
            let (tx, ty) = (dst % width, dst / width);
            while x != tx {
                let node = y * width + x;
                let dir = if tx > x { 0 } else { 1 };
                f((node * 4 + dir) as u64, 1);
                if tx > x {
                    x += 1;
                } else {
                    x -= 1;
                }
            }
            while y != ty {
                let node = y * width + x;
                let dir = if ty > y { 2 } else { 3 };
                f((node * 4 + dir) as u64, 1);
                if ty > y {
                    y += 1;
                } else {
                    y -= 1;
                }
            }
        }
        Route::Tree { arity } => {
            let mut h = 0u32;
            let (mut a, mut b) = (src, dst);
            while a != b {
                a /= arity;
                b /= arity;
                h += 1;
            }
            let mut up = src;
            let mut fat = 1u64;
            for level in 0..h as u64 {
                f(TREE_UP | (level << 24) | up as u64, fat);
                up /= arity;
                fat *= arity as u64;
            }
            for level in (0..h as u64).rev() {
                fat /= arity as u64;
                let child = dst / arity.pow(level as u32);
                f(TREE_DOWN | (level << 24) | child as u64, fat);
            }
        }
    }
}

/// The interconnect: latency model plus traffic accounting.
///
/// # Example
///
/// ```
/// use tt_net::{Network, Packet, Payload, VirtualNet};
/// use tt_base::{Cycles, NodeId};
///
/// let mut net = Network::new(4, Cycles::new(11));
/// let packet = Packet {
///     src: NodeId::new(0),
///     dst: NodeId::new(2),
///     vn: VirtualNet::Request,
///     handler: 7,
///     payload: Payload::args(&[0x1000]),
/// };
/// assert_eq!(net.send(Cycles::new(100), &packet), Cycles::new(111));
/// ```
#[derive(Clone, Debug)]
pub struct Network {
    latency: Cycles,
    /// Extra cycles a packet occupies its source injection port; 0 in the
    /// paper's model (no contention), configurable for ablations. Only
    /// consulted by the ideal (unrouted) topology.
    occupancy: Cycles,
    /// Earliest time each node's injection port is free (used only when
    /// `occupancy > 0`).
    port_free: Vec<Cycles>,
    /// Routed topology (`None` = the ideal constant-latency pipe).
    route: Option<Route>,
    /// Earliest free cycle of each `(source node, link)` this instance
    /// has routed over, keyed `src << 42 | link id`. Keeping the queue
    /// state per *source* makes routed latencies independent of how
    /// sources are sharded: a source's packets queue behind its own
    /// earlier traffic on every link of their route, never behind another
    /// source's (cross-source contention is approximated away —
    /// DESIGN.md §11 discusses the trade).
    link_free: FxHashMap<u64, Cycles>,
    stats: NetStats,
    /// Seeded per-packet latency jitter (`None` = the paper's constant
    /// latency). A legal-nondeterminism knob for the `tt-check` fuzzer.
    jitter: Option<Jitter>,
    /// Seeded lossy-network fault schedule (`None` = the paper's
    /// reliable interconnect). Applied only by [`Network::transmit`].
    faults: Option<FaultPlan>,
}

/// State for seeded latency jitter (see [`Network::set_jitter`]).
///
/// The extra delay for a packet is a pure hash of `(seed, src, dst,
/// per-pair packet index)` rather than a draw from an RNG *stream*: a
/// stream's draw order is global, which under the parallel simulator
/// would depend on how sends from different shards interleave. The hash
/// depends only on per-pair state that the sending node's shard owns
/// exclusively, so a jittered run is bit-identical at every thread
/// count.
#[derive(Clone, Debug)]
struct Jitter {
    seed: u64,
    max_extra: Cycles,
    /// Latest delivery time handed out for each ordered `(src, dst)`
    /// pair (`src * nodes + dst`): jitter may stretch latencies but must
    /// never reorder traffic between the same two nodes, which the
    /// protocols are entitled to assume (e.g. an INV racing past an
    /// earlier PUT_RO to the same sharer would clobber its Busy tag).
    pair_last: Vec<Cycles>,
    /// Wire packets sent so far per ordered `(src, dst)` pair.
    pair_sent: Vec<u64>,
    nodes: usize,
}

/// The serialized wire image of a packet: handler word, argument words,
/// then data bytes — the layout [`Packet::wire_bytes`] charges for.
/// Only the fault model materializes it (checksum verification of a
/// corrupted copy); the fast path never allocates.
fn wire_image(p: &Packet) -> Vec<u8> {
    let mut image = Vec::with_capacity(p.wire_bytes());
    image.extend_from_slice(&p.handler.to_le_bytes());
    for w in p.payload.words() {
        image.extend_from_slice(&w.to_le_bytes());
    }
    image.extend_from_slice(p.payload.data());
    image
}

/// The checksum word every wire packet carries (modeled, not stored):
/// a splitmix chain over the wire image plus the routing header. Any
/// single-bit flip in the image changes it, which is what makes the
/// fault model's corruption *detectable* — a receiver verifying this
/// word discards the copy, so corruption degrades to a counted drop.
pub fn packet_checksum(routing: u64, image: &[u8]) -> u64 {
    let mut h = mix64(0x74_74_63_6B ^ routing); // "ttck"
    for (i, &b) in image.iter().enumerate() {
        h = mix64(h ^ ((b as u64) << 8) ^ i as u64);
    }
    h
}

/// Packed routing header (src, dst, vn) for [`packet_checksum`].
fn routing_word(p: &Packet) -> u64 {
    ((p.src.index() as u64) << 32) | ((p.dst.index() as u64) << 16) | p.vn.index() as u64
}

/// Delivery times [`Network::transmit`] produced for one logical send:
/// zero (dropped / corrupted / partitioned), one (the normal case), or
/// two (the fault plan duplicated the packet).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Deliveries {
    times: [Option<Cycles>; 2],
}

impl Deliveries {
    fn one(t: Cycles) -> Self {
        Deliveries { times: [Some(t), None] }
    }

    fn push(&mut self, t: Cycles) {
        if self.times[0].is_none() {
            self.times[0] = Some(t);
        } else {
            self.times[1] = Some(t);
        }
    }

    /// Number of copies that will arrive.
    pub fn count(&self) -> usize {
        self.times.iter().filter(|t| t.is_some()).count()
    }

    /// Iterates the arrival times in send order.
    pub fn iter(&self) -> impl Iterator<Item = Cycles> + '_ {
        self.times.iter().filter_map(|t| *t)
    }
}

/// Deterministic per-link fault schedule (see [`FaultSpec`]).
///
/// Like [`Jitter`], every decision is a pure hash of per-ordered-pair
/// state owned exclusively by the sending node's shard — never a draw
/// from a shared RNG stream — so a fault schedule is bit-identical at
/// any simulator thread count and replays exactly from its seed.
#[derive(Clone, Debug)]
struct FaultPlan {
    spec: FaultSpec,
    /// Logical sends considered so far per ordered `(src, dst)` pair
    /// (the per-link fault decision index).
    pair_seen: Vec<u64>,
    nodes: usize,
}

/// Salt separating the independent per-packet fault decisions.
const SALT_DROP: u64 = 0xD0;
const SALT_DUP: u64 = 0xD1;
const SALT_CORRUPT: u64 = 0xC0;
const SALT_PARTITION: u64 = 0xBA;

impl FaultPlan {
    fn new(spec: FaultSpec, nodes: usize) -> Self {
        if spec.partition_permille > 0 && spec.partition_epoch > 0 {
            assert!(
                spec.partition_run >= 2,
                "partition_run must be >= 2 so every run ends with a clear epoch"
            );
        }
        FaultPlan { spec, pair_seen: vec![0; nodes * nodes], nodes }
    }

    /// The decision hash for packet `n` on `pair` under `salt`.
    fn draw(&self, salt: u64, pair: usize, n: u64) -> u64 {
        mix64(mix64(mix64(self.spec.seed ^ salt) ^ pair as u64) ^ n)
    }

    /// Permille-threshold decision.
    fn hit(&self, salt: u64, pair: usize, n: u64, permille: u32) -> bool {
        permille > 0 && self.draw(salt, pair, n) % 1000 < permille as u64
    }

    /// Whether the ordered link is partitioned at sender time `now`.
    /// Partitions are decided per `(link, run)` and always clear before
    /// the run ends (see [`FaultSpec`]).
    fn partitioned(&self, pair: usize, now: Cycles) -> bool {
        let spec = &self.spec;
        if spec.partition_permille == 0 || spec.partition_epoch == 0 {
            return false;
        }
        let epoch = now.raw() / spec.partition_epoch;
        let run = epoch / spec.partition_run;
        let d = self.draw(SALT_PARTITION, pair, run);
        if d % 1000 >= spec.partition_permille as u64 {
            return false;
        }
        // Outage covers the first `len` epochs of the run, 1 ..= run-1.
        let len = 1 + mix64(d) % (spec.partition_run - 1);
        epoch % spec.partition_run < len
    }
}

impl Network {
    /// Creates a network with the given one-way latency for `nodes` nodes.
    pub fn new(nodes: usize, latency: Cycles) -> Self {
        Network {
            latency,
            occupancy: Cycles::ZERO,
            port_free: vec![Cycles::ZERO; nodes],
            route: None,
            link_free: FxHashMap::default(),
            stats: NetStats::default(),
            jitter: None,
            faults: None,
        }
    }

    /// Sets per-packet injection-port occupancy (0 = paper's model).
    pub fn set_occupancy(&mut self, occupancy: Cycles) {
        self.occupancy = occupancy;
    }

    /// Installs a routed topology (DESIGN.md §11). [`Topology::Ideal`]
    /// keeps the constant-latency pipe; mesh / fat-tree route every
    /// cross-node packet over per-link occupancy queues. Derived
    /// parameters (`width`/`arity` of 0) are resolved here against the
    /// node count: a mesh defaults to `ceil(sqrt(nodes))` columns, a fat
    /// tree to arity 4.
    pub fn set_topology(&mut self, topology: Topology) {
        let nodes = self.port_free.len();
        self.route = match topology {
            Topology::Ideal => None,
            Topology::Mesh2D { width } => {
                let width = if width == 0 {
                    (nodes as f64).sqrt().ceil() as usize
                } else {
                    width
                };
                assert!(width >= 1, "mesh width must be at least 1");
                Some(Route::Mesh { width })
            }
            Topology::FatTree { arity } => {
                let arity = if arity == 0 { 4 } else { arity };
                assert!(arity >= 2, "fat-tree arity must be at least 2");
                Some(Route::Tree { arity })
            }
        };
    }

    /// Turns on seeded latency jitter: every wire packet is delayed by a
    /// deterministic extra `0..=max_extra` cycles drawn from `seed`.
    /// Delivery between the same ordered node pair stays strictly FIFO
    /// (a jittered delivery is clamped past the pair's previous one), so
    /// only latencies change, never per-link message order. Self-sends
    /// never leave the node and are not jittered.
    pub fn set_jitter(&mut self, seed: u64, max_extra: Cycles) {
        let nodes = self.port_free.len();
        self.jitter = Some(Jitter {
            seed,
            max_extra,
            pair_last: vec![Cycles::ZERO; nodes * nodes],
            pair_sent: vec![0; nodes * nodes],
            nodes,
        });
    }

    /// Installs a deterministic lossy-network fault schedule. Faults
    /// apply only to packets sent through [`Network::transmit`];
    /// [`Network::send`] (used for the machine's own control traffic —
    /// bulk data and barriers ride the CM-5's dedicated networks, which
    /// this model keeps reliable) is unaffected.
    pub fn set_fault_plan(&mut self, spec: FaultSpec) {
        let nodes = self.port_free.len();
        self.faults = Some(FaultPlan::new(spec, nodes));
    }

    /// The installed fault schedule, if any.
    pub fn fault_spec(&self) -> Option<&FaultSpec> {
        self.faults.as_ref().map(|f| &f.spec)
    }

    /// The configured one-way latency (the ideal pipe's constant).
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    /// The minimum number of cycles between a cross-node send and its
    /// earliest possible effect at the destination — the conservative
    /// lookahead bound for WWT-style parallel simulation. For the ideal
    /// pipe this is the constant latency (occupancy and jitter only ever
    /// *add* delay); for a routed topology it is one hop, the latency of
    /// an unqueued single-link route.
    pub fn lookahead(&self) -> Cycles {
        match self.route {
            None => self.latency,
            Some(_) => Cycles::new(HOP_LATENCY),
        }
    }

    /// Routes one wire packet and returns its arrival time: each link of
    /// the deterministic route delays the head by [`HOP_LATENCY`] and is
    /// then busy for the packet's serialization time (`wire bytes / 8`,
    /// scaled down on fattened tree links), so later packets from the
    /// same source queue behind it.
    fn route_deliver(&mut self, now: Cycles, src: NodeId, dst: NodeId, wire: usize) -> Cycles {
        let route = self.route.expect("route_deliver requires a routed topology");
        let ser = wire.div_ceil(ARG_WORD_BYTES).max(1) as u64;
        let src_key = (src.index() as u64) << 42;
        let mut cursor = now;
        for_each_hop(route, src.index(), dst.index(), |link, fat| {
            let free = self.link_free.entry(src_key | link).or_insert(Cycles::ZERO);
            let start = cursor.max(*free);
            *free = start + Cycles::new((ser / fat.max(1)).max(1));
            cursor = start + Cycles::new(HOP_LATENCY);
        });
        cursor
    }

    /// Accepts a packet at time `now` and returns its delivery time at the
    /// destination. Under the ideal topology, packets between distinct
    /// nodes are charged the constant network latency; routed topologies
    /// charge the route's hop count plus any per-link queuing. A node
    /// messaging itself short-circuits the network and is delivered after
    /// one cycle (Section 5.1).
    ///
    /// # Panics
    ///
    /// Panics if the packet exceeds [`MAX_PACKET_BYTES`] — the sender must
    /// packetize larger transfers (see `tt-tempest::bulk`).
    pub fn send(&mut self, now: Cycles, packet: &Packet) -> Cycles {
        assert!(
            packet.wire_bytes() <= MAX_PACKET_BYTES,
            "packet of {} bytes exceeds the {}-byte maximum; packetize bulk data",
            packet.wire_bytes(),
            MAX_PACKET_BYTES
        );
        if packet.src == packet.dst {
            self.stats.local_packets.inc();
            return now + Cycles::new(1);
        }
        let vn = packet.vn.index();
        self.stats.packets[vn].inc();
        self.stats.bytes[vn].add(packet.wire_bytes() as u64);
        let base = if self.route.is_some() {
            self.route_deliver(now, packet.src, packet.dst, packet.wire_bytes())
        } else if self.occupancy == Cycles::ZERO {
            now + self.latency
        } else {
            let port = &mut self.port_free[packet.src.index()];
            let start = if *port > now { *port } else { now };
            *port = start + self.occupancy;
            start + self.occupancy + self.latency
        };
        match &mut self.jitter {
            None => base,
            Some(j) => {
                let pair = packet.src.index() * j.nodes + packet.dst.index();
                let draw = mix64(mix64(j.seed ^ pair as u64) ^ j.pair_sent[pair]);
                j.pair_sent[pair] += 1;
                let bound = j.max_extra.raw() + 1;
                let extra = Cycles::new(((draw as u128 * bound as u128) >> 64) as u64);
                let floor = j.pair_last[pair] + Cycles::new(1);
                let t = (base + extra).max(floor);
                j.pair_last[pair] = t;
                t
            }
        }
    }

    /// Accepts a packet at time `now` and returns the delivery times of
    /// every copy that will actually arrive, after applying the fault
    /// schedule (if one is installed): a transient partition or a drop
    /// yields no copies, corruption of a copy is detected by the wire
    /// checksum and discards that copy, and duplication yields a second
    /// copy. With no fault plan this is exactly [`Network::send`] —
    /// same accounting, same jitter draws, same delivery time — so the
    /// fault plumbing is cycle-neutral when unused. Self-sends never
    /// traverse the wire and are never faulted.
    ///
    /// Faulted copies are injected (and counted) like any other wire
    /// packet; delivery between an ordered node pair remains monotonic,
    /// so per-link FIFO holds for the copies that do arrive.
    pub fn transmit(&mut self, now: Cycles, packet: &Packet) -> Deliveries {
        if self.faults.is_none() || packet.src == packet.dst {
            return Deliveries::one(self.send(now, packet));
        }
        let (pair, n, partitioned) = {
            let plan = self.faults.as_mut().expect("checked above");
            let pair = packet.src.index() * plan.nodes + packet.dst.index();
            let n = plan.pair_seen[pair];
            plan.pair_seen[pair] += 1;
            (pair, n, plan.partitioned(pair, now))
        };
        let plan_decisions = |net: &Network, salt: u64| {
            let plan = net.faults.as_ref().expect("checked above");
            (
                plan.hit(SALT_DROP, pair, n, plan.spec.drop_permille),
                plan.hit(SALT_DUP, pair, n, plan.spec.dup_permille),
                plan.hit(salt, pair, n, plan.spec.corrupt_permille),
                plan.draw(salt, pair, n),
            )
        };
        // The sender injects the packet either way: it cannot observe
        // the fault, so injection stats and jitter state advance exactly
        // as on a healthy link.
        let t1 = self.send(now, packet);
        if partitioned {
            self.stats.partition_lost.inc();
            return Deliveries::default();
        }
        let (dropped, duplicated, corrupt1, draw1) = plan_decisions(self, SALT_CORRUPT);
        if dropped {
            self.stats.dropped.inc();
            return Deliveries::default();
        }
        let mut out = Deliveries::default();
        let verify_copy = |net: &mut Network, draw: u64| {
            // Model the receiver's checksum check on a corrupted copy:
            // flip one deterministic wire bit and confirm the checksum
            // word changes, then discard the copy.
            let image = wire_image(packet);
            let routing = routing_word(packet);
            let clean = packet_checksum(routing, &image);
            let bit = draw % (image.len() as u64 * 8);
            let mut flipped = image;
            flipped[(bit / 8) as usize] ^= 1 << (bit % 8);
            assert_ne!(
                packet_checksum(routing, &flipped),
                clean,
                "wire checksum failed to detect a single-bit flip"
            );
            net.stats.corrupt_dropped.inc();
        };
        if corrupt1 {
            verify_copy(self, draw1);
        } else {
            out.push(t1);
        }
        if duplicated {
            self.stats.duplicated.inc();
            // The duplicate is one more wire packet, injected at the
            // same instant; jitter's pair clamp keeps link order.
            let t2 = self.send(now, packet);
            let (_, _, corrupt2, draw2) = plan_decisions(self, SALT_CORRUPT ^ 0xFF);
            if corrupt2 {
                verify_copy(self, draw2);
            } else {
                out.push(t2.max(t1));
            }
        }
        out
    }

    /// Records traffic statistics for a packet the caller does not build.
    ///
    /// The DirNNB machine charges protocol latencies from its own cost
    /// tables and uses the network for traffic accounting only; this is
    /// the accounting half of [`Network::send`] (same packet/byte/local
    /// counters) without constructing a [`Payload`] per message or
    /// advancing injection-port state.
    pub fn count(&mut self, src: NodeId, dst: NodeId, vn: VirtualNet, wire_bytes: usize) {
        if src == dst {
            self.stats.local_packets.inc();
            return;
        }
        let vn = vn.index();
        self.stats.packets[vn].inc();
        self.stats.bytes[vn].add(wire_bytes as u64);
    }

    /// Accounts for a packet the caller does not build and returns its
    /// arrival time for an injection at `inject`: the accounting of
    /// [`Network::count`] combined with the latency model of
    /// [`Network::send`]. A self-send arrives at `inject` (the caller's
    /// cost model already covers local hand-off); the ideal pipe charges
    /// the constant latency; routed topologies charge the route. Used by
    /// the DirNNB machine, whose protocol messages carry no payload the
    /// simulator needs.
    pub fn deliver_at(
        &mut self,
        inject: Cycles,
        src: NodeId,
        dst: NodeId,
        vn: VirtualNet,
        wire_bytes: usize,
    ) -> Cycles {
        if src == dst {
            self.stats.local_packets.inc();
            return inject;
        }
        let i = vn.index();
        self.stats.packets[i].inc();
        self.stats.bytes[i].add(wire_bytes as u64);
        if self.route.is_some() {
            self.route_deliver(inject, src, dst, wire_bytes)
        } else {
            inject + self.latency
        }
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Folds another instance's traffic accounting into this one (see
    /// [`NetStats::absorb`]).
    pub fn absorb_stats(&mut self, other: &Network) {
        self.stats.absorb(&other.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(src: u16, dst: u16, vn: VirtualNet, payload: Payload) -> Packet {
        Packet {
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            vn,
            handler: 1,
            payload,
        }
    }

    #[test]
    fn constant_latency() {
        let mut net = Network::new(4, Cycles::new(11));
        let p = packet(0, 1, VirtualNet::Request, Payload::args(&[42]));
        assert_eq!(net.send(Cycles::new(100), &p), Cycles::new(111));
    }

    #[test]
    fn self_send_short_circuits() {
        let mut net = Network::new(4, Cycles::new(11));
        let p = packet(2, 2, VirtualNet::Request, Payload::new());
        assert_eq!(net.send(Cycles::new(5), &p), Cycles::new(6));
        assert_eq!(net.stats().total_packets(), 0);
        assert_eq!(net.stats().local_packets.get(), 1);
    }

    #[test]
    fn stats_split_by_virtual_net() {
        let mut net = Network::new(4, Cycles::new(11));
        let req = packet(0, 1, VirtualNet::Request, Payload::args(&[1, 2]));
        let rsp = packet(
            1,
            0,
            VirtualNet::Response,
            Payload::with_block(&[1], [0u8; BLOCK_BYTES]),
        );
        net.send(Cycles::ZERO, &req);
        net.send(Cycles::ZERO, &rsp);
        let s = net.stats();
        assert_eq!(s.packets[VirtualNet::Request.index()].get(), 1);
        assert_eq!(s.packets[VirtualNet::Response.index()].get(), 1);
        assert_eq!(
            s.bytes[VirtualNet::Request.index()].get(),
            (HANDLER_WORD_BYTES + 2 * ARG_WORD_BYTES) as u64
        );
        assert_eq!(
            s.bytes[VirtualNet::Response.index()].get(),
            (HANDLER_WORD_BYTES + ARG_WORD_BYTES + BLOCK_BYTES) as u64
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_payload_panics_at_construction() {
        // 10 args exceed the 9-word inline capacity.
        let _ = Payload::args(&[0; 10]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_packet_panics() {
        let mut net = Network::new(2, Cycles::new(11));
        // Constructible (2 words + 64 data) but 4 + 16 + 64 = 84B > 80B.
        let p = packet(
            0,
            1,
            VirtualNet::Request,
            Payload::with_data(&[0, 0], &[0u8; MAX_DATA_BYTES]),
        );
        net.send(Cycles::ZERO, &p);
    }

    #[test]
    fn max_size_packet_is_accepted() {
        let mut net = Network::new(2, Cycles::new(11));
        // 4 + 5*8 + 32 = 76 <= 80
        let p = packet(
            0,
            1,
            VirtualNet::Response,
            Payload::with_block(&[0; 5], [7u8; BLOCK_BYTES]),
        );
        net.send(Cycles::ZERO, &p);
        assert_eq!(net.stats().total_bytes(), 76);
    }

    #[test]
    fn payload_accessors_and_push() {
        let mut p = Payload::args(&[9, 8]);
        assert_eq!(p.words(), &[9, 8]);
        assert_eq!(p.data(), &[] as &[u8]);
        p.push_word(7);
        assert_eq!(p.words(), &[9, 8, 7]);
        assert_eq!(p.wire_bytes(), HANDLER_WORD_BYTES + 3 * ARG_WORD_BYTES);
        let d = Payload::with_data(&[1], &[2, 3]);
        assert_eq!(d.data(), &[2, 3]);
        // Equality ignores inactive tail bytes by construction.
        assert_eq!(Payload::args(&[5]), Payload::with_data(&[5], &[]));
        assert_ne!(Payload::args(&[5]), Payload::args(&[5, 0]));
    }

    #[test]
    fn occupancy_serializes_injection() {
        let mut net = Network::new(2, Cycles::new(10));
        net.set_occupancy(Cycles::new(4));
        let p = packet(0, 1, VirtualNet::Request, Payload::new());
        assert_eq!(net.send(Cycles::new(0), &p), Cycles::new(14));
        // Second packet at the same instant waits for the port.
        assert_eq!(net.send(Cycles::new(0), &p), Cycles::new(18));
        // A later packet from the other node is unaffected.
        let q = packet(1, 0, VirtualNet::Request, Payload::new());
        assert_eq!(net.send(Cycles::new(0), &q), Cycles::new(14));
    }

    #[test]
    fn mesh_routes_charge_hop_counts() {
        let mut net = Network::new(16, Cycles::new(11));
        net.set_topology(Topology::Mesh2D { width: 4 });
        assert_eq!(net.lookahead(), Cycles::new(HOP_LATENCY));
        // Node 0 = (0,0), node 5 = (1,1): 2 hops.
        let p = packet(0, 5, VirtualNet::Request, Payload::new());
        assert_eq!(net.send(Cycles::new(100), &p), Cycles::new(100 + 2 * HOP_LATENCY));
        // Node 0 -> node 15 = (3,3): 6 hops.
        let q = packet(0, 15, VirtualNet::Request, Payload::new());
        assert_eq!(net.send(Cycles::new(500), &q), Cycles::new(500 + 6 * HOP_LATENCY));
        // Neighbors: one hop, the lookahead bound.
        let r = packet(0, 1, VirtualNet::Request, Payload::new());
        assert_eq!(net.send(Cycles::new(900), &r), Cycles::new(900 + HOP_LATENCY));
    }

    #[test]
    fn mesh_links_queue_by_serialization() {
        let mut net = Network::new(4, Cycles::new(11));
        net.set_topology(Topology::Mesh2D { width: 2 });
        // A block packet serializes for ceil(76 / 8) = 10 cycles per link.
        let big = packet(
            0,
            1,
            VirtualNet::Response,
            Payload::with_block(&[0; 5], [0u8; BLOCK_BYTES]),
        );
        assert_eq!(net.send(Cycles::new(0), &big), Cycles::new(HOP_LATENCY));
        // Same source, same instant: the shared first link is busy.
        assert_eq!(net.send(Cycles::new(0), &big), Cycles::new(10 + HOP_LATENCY));
        assert_eq!(net.send(Cycles::new(0), &big), Cycles::new(20 + HOP_LATENCY));
        // A different destination from the same source over a different
        // link (0 -> 2 is a +y hop) is unaffected.
        let other = packet(0, 2, VirtualNet::Request, Payload::new());
        assert_eq!(net.send(Cycles::new(0), &other), Cycles::new(HOP_LATENCY));
    }

    #[test]
    fn routed_delivery_is_monotonic_per_pair() {
        let mut net = Network::new(16, Cycles::new(11));
        net.set_topology(Topology::Mesh2D { width: 4 });
        let p = packet(
            3,
            12,
            VirtualNet::Request,
            Payload::with_block(&[1], [0u8; BLOCK_BYTES]),
        );
        let mut last = Cycles::ZERO;
        for i in 0..200u64 {
            let t = net.send(Cycles::new(i), &p);
            assert!(t > last, "per-pair FIFO violated: {t:?} <= {last:?}");
            last = t;
        }
    }

    #[test]
    fn routed_runs_are_deterministic_and_clone_independent() {
        let mut a = Network::new(64, Cycles::new(11));
        a.set_topology(Topology::Mesh2D { width: 0 }); // derives 8
        let mut b = a.clone();
        let mk = |src, dst| packet(src, dst, VirtualNet::Request, Payload::args(&[1, 2]));
        let ta: Vec<u64> = (0..100u64)
            .map(|i| a.send(Cycles::new(i * 3), &mk((i % 8) as u16, (i % 63) as u16)).raw())
            .collect();
        let tb: Vec<u64> = (0..100u64)
            .map(|i| b.send(Cycles::new(i * 3), &mk((i % 8) as u16, (i % 63) as u16)).raw())
            .collect();
        assert_eq!(ta, tb, "clones replay identically");
    }

    #[test]
    fn fat_tree_routes_climb_and_descend() {
        let mut net = Network::new(16, Cycles::new(11));
        net.set_topology(Topology::FatTree { arity: 4 });
        // Same leaf group (0 and 1 share a parent): up + down = 2 hops.
        let near = packet(0, 1, VirtualNet::Request, Payload::new());
        assert_eq!(net.send(Cycles::new(0), &near), Cycles::new(2 * HOP_LATENCY));
        // Across groups (0 and 15): via the root, 4 hops.
        let far = packet(0, 15, VirtualNet::Request, Payload::new());
        assert_eq!(net.send(Cycles::new(100), &far), Cycles::new(100 + 4 * HOP_LATENCY));
        assert_eq!(net.lookahead(), Cycles::new(HOP_LATENCY));
    }

    #[test]
    fn fat_tree_upper_links_are_fattened() {
        let mut net = Network::new(16, Cycles::new(11));
        net.set_topology(Topology::FatTree { arity: 4 });
        // Two far sends from node 0 at the same instant: the leaf up-link
        // serializes the 76-byte packet for 10 cycles, but the level-1
        // links only for ceil(10/4) -> 2. The second packet queues 10
        // behind the first on the leaf link only.
        let far = packet(
            0,
            15,
            VirtualNet::Response,
            Payload::with_block(&[0; 5], [0u8; BLOCK_BYTES]),
        );
        assert_eq!(net.send(Cycles::new(0), &far), Cycles::new(4 * HOP_LATENCY));
        assert_eq!(net.send(Cycles::new(0), &far), Cycles::new(10 + 4 * HOP_LATENCY));
    }

    #[test]
    fn deliver_at_matches_ideal_and_routes() {
        let mut net = Network::new(16, Cycles::new(11));
        let a = NodeId::new(0);
        let b = NodeId::new(5);
        assert_eq!(
            net.deliver_at(Cycles::new(50), a, b, VirtualNet::Request, 12),
            Cycles::new(61)
        );
        assert_eq!(net.stats().packets[0].get(), 1);
        assert_eq!(net.stats().bytes[0].get(), 12);
        // Self-delivery: no wire, arrival at the injection time.
        assert_eq!(
            net.deliver_at(Cycles::new(70), a, a, VirtualNet::Request, 12),
            Cycles::new(70)
        );
        assert_eq!(net.stats().local_packets.get(), 1);
        // Routed: 2 hops for (0,0) -> (1,1) on a width-4 mesh.
        net.set_topology(Topology::Mesh2D { width: 4 });
        assert_eq!(
            net.deliver_at(Cycles::new(90), a, b, VirtualNet::Request, 12),
            Cycles::new(90 + 2 * HOP_LATENCY)
        );
    }

    #[test]
    fn jitter_stays_within_band_and_is_deterministic() {
        let deliveries = |seed: u64| {
            let mut net = Network::new(4, Cycles::new(11));
            net.set_jitter(seed, Cycles::new(3));
            let p = packet(0, 1, VirtualNet::Request, Payload::new());
            (0..100)
                .map(|i| net.send(Cycles::new(i * 50), &p).raw())
                .collect::<Vec<_>>()
        };
        let a = deliveries(42);
        assert_eq!(a, deliveries(42), "same seed, same deliveries");
        assert_ne!(a, deliveries(43));
        for (i, &t) in a.iter().enumerate() {
            let base = i as u64 * 50 + 11;
            assert!((base..=base + 3).contains(&t), "delivery {t} off-band");
        }
        assert!(
            a.iter().enumerate().any(|(i, &t)| t != i as u64 * 50 + 11),
            "seed 42 should actually jitter something"
        );
    }

    #[test]
    fn jitter_preserves_per_pair_fifo() {
        let mut net = Network::new(4, Cycles::new(11));
        net.set_jitter(7, Cycles::new(3));
        let p = packet(0, 1, VirtualNet::Request, Payload::new());
        let q = packet(0, 1, VirtualNet::Response, Payload::new());
        let mut last = Cycles::ZERO;
        // Closely spaced sends on both vns: deliveries must be strictly
        // increasing for the ordered pair even when jitter would reorder.
        for i in 0..200u64 {
            let pk = if i % 2 == 0 { &p } else { &q };
            let t = net.send(Cycles::new(i), pk);
            assert!(t > last, "pair FIFO violated: {t:?} <= {last:?}");
            last = t;
        }
    }

    #[test]
    fn jitter_leaves_self_sends_alone() {
        let mut net = Network::new(4, Cycles::new(11));
        net.set_jitter(1, Cycles::new(3));
        let p = packet(2, 2, VirtualNet::Request, Payload::new());
        for i in 0..20 {
            assert_eq!(net.send(Cycles::new(i), &p), Cycles::new(i + 1));
        }
    }

    #[test]
    fn no_jitter_means_constant_latency() {
        let mut net = Network::new(4, Cycles::new(11));
        let p = packet(0, 3, VirtualNet::Response, Payload::new());
        for i in 0..20 {
            assert_eq!(net.send(Cycles::new(i * 100), &p), Cycles::new(i * 100 + 11));
        }
    }

    fn quiet_spec(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            drop_permille: 0,
            dup_permille: 0,
            corrupt_permille: 0,
            partition_permille: 0,
            partition_epoch: 0,
            partition_run: 4,
        }
    }

    #[test]
    fn transmit_without_plan_equals_send() {
        let mut a = Network::new(4, Cycles::new(11));
        let mut b = Network::new(4, Cycles::new(11));
        let p = packet(0, 1, VirtualNet::Request, Payload::args(&[1]));
        for i in 0..50u64 {
            let d = a.transmit(Cycles::new(i * 7), &p);
            let t = b.send(Cycles::new(i * 7), &p);
            assert_eq!(d.iter().collect::<Vec<_>>(), vec![t]);
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn zero_rate_plan_is_cycle_neutral() {
        let mut a = Network::new(4, Cycles::new(11));
        a.set_jitter(9, Cycles::new(3));
        a.set_fault_plan(quiet_spec(1234));
        let mut b = Network::new(4, Cycles::new(11));
        b.set_jitter(9, Cycles::new(3));
        let p = packet(0, 1, VirtualNet::Request, Payload::args(&[1]));
        for i in 0..100u64 {
            let d = a.transmit(Cycles::new(i * 5), &p);
            let t = b.send(Cycles::new(i * 5), &p);
            assert_eq!(d.iter().collect::<Vec<_>>(), vec![t], "send {i}");
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.stats().total_lost(), 0);
    }

    #[test]
    fn faulty_transmission_is_deterministic_and_counted() {
        let run = || {
            let mut net = Network::new(4, Cycles::new(11));
            let mut spec = quiet_spec(42);
            spec.drop_permille = 300;
            spec.dup_permille = 300;
            spec.corrupt_permille = 200;
            net.set_fault_plan(spec);
            let p = packet(0, 1, VirtualNet::Request, Payload::args(&[7, 8]));
            let pattern: Vec<Vec<u64>> = (0..300u64)
                .map(|i| net.transmit(Cycles::new(i * 20), &p).iter().map(Cycles::raw).collect())
                .collect();
            (pattern, net.stats().clone())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b, "same seed, same fault schedule");
        assert_eq!(sa, sb);
        assert!(sa.dropped.get() > 0, "drops must fire at 30%");
        assert!(sa.duplicated.get() > 0, "dups must fire at 30%");
        assert!(sa.corrupt_dropped.get() > 0, "corruption must fire at 20%");
        assert!(a.iter().any(|d| d.len() == 2), "some send must deliver twice");
        assert!(a.iter().any(|d| d.is_empty()), "some send must deliver never");
        // Fault decisions are per ordered pair: a different link with the
        // same seed sees a different schedule.
        let mut net = Network::new(4, Cycles::new(11));
        let mut spec = quiet_spec(42);
        spec.drop_permille = 300;
        spec.dup_permille = 300;
        spec.corrupt_permille = 200;
        net.set_fault_plan(spec);
        let q = packet(2, 3, VirtualNet::Request, Payload::args(&[7, 8]));
        let other: Vec<Vec<u64>> = (0..300u64)
            .map(|i| net.transmit(Cycles::new(i * 20), &q).iter().map(Cycles::raw).collect())
            .collect();
        let a_shape: Vec<usize> = a.iter().map(Vec::len).collect();
        let o_shape: Vec<usize> = other.iter().map(Vec::len).collect();
        assert_ne!(a_shape, o_shape, "links draw independent schedules");
    }

    #[test]
    fn faulty_transmission_keeps_per_pair_fifo() {
        let mut net = Network::new(4, Cycles::new(11));
        net.set_jitter(7, Cycles::new(5));
        let mut spec = quiet_spec(3);
        spec.drop_permille = 200;
        spec.dup_permille = 400;
        net.set_fault_plan(spec);
        let p = packet(0, 1, VirtualNet::Request, Payload::new());
        let mut last = Cycles::ZERO;
        for i in 0..400u64 {
            for t in net.transmit(Cycles::new(i), &p).iter() {
                assert!(t >= last, "pair FIFO violated: {t:?} < {last:?}");
                last = t;
            }
        }
    }

    #[test]
    fn partitions_are_bounded_and_heal_before_the_run_ends() {
        let mut spec = quiet_spec(99);
        spec.partition_permille = 1000; // every run partitioned
        spec.partition_epoch = 100;
        spec.partition_run = 4;
        let mut net = Network::new(2, Cycles::new(11));
        net.set_fault_plan(spec);
        let p = packet(0, 1, VirtualNet::Request, Payload::new());
        let mut lost_some = false;
        for run in 0..20u64 {
            // The last epoch of every run must be clear.
            let t_last = Cycles::new((run * 4 + 3) * 100 + 50);
            assert_eq!(net.transmit(t_last, &p).count(), 1, "run {run} last epoch not clear");
            // The first epoch of a partitioned run is blacked out.
            let t_first = Cycles::new(run * 4 * 100 + 50);
            if net.transmit(t_first, &p).count() == 0 {
                lost_some = true;
            }
        }
        assert!(lost_some, "a fully partition-prone plan must lose packets");
        assert!(net.stats().partition_lost.get() > 0);
    }

    #[test]
    fn checksum_detects_every_single_bit_flip() {
        let p = packet(
            1,
            2,
            VirtualNet::Response,
            Payload::with_block(&[0xDEAD_BEEF, 42], [0xA5u8; BLOCK_BYTES]),
        );
        let image = wire_image(&p);
        assert_eq!(image.len(), p.wire_bytes());
        let routing = routing_word(&p);
        let clean = packet_checksum(routing, &image);
        for bit in 0..image.len() * 8 {
            let mut flipped = image.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(packet_checksum(routing, &flipped), clean, "bit {bit} undetected");
        }
        // The routing header is covered too (a misrouted copy is detected).
        assert_ne!(packet_checksum(routing ^ 1, &image), clean);
    }

    #[test]
    fn corruption_of_a_retransmitted_copy_is_detected_and_dropped() {
        // Find a seed whose link-(0,1) schedule delivers the original
        // (decision index 0) but corrupts the retransmitted copy
        // (decision index 1) — the edge case where the retry itself is
        // damaged and a further retry must follow.
        let mut spec = quiet_spec(0);
        spec.corrupt_permille = 300;
        let p = packet(0, 1, VirtualNet::Request, Payload::args(&[5]));
        let seed = (0..500u64)
            .find(|&s| {
                let mut net = Network::new(2, Cycles::new(11));
                spec.seed = s;
                net.set_fault_plan(spec);
                let first = net.transmit(Cycles::new(0), &p).count();
                let second = net.transmit(Cycles::new(1000), &p).count();
                first == 1 && second == 0
            })
            .expect("some seed corrupts exactly the retransmission");
        let mut net = Network::new(2, Cycles::new(11));
        spec.seed = seed;
        net.set_fault_plan(spec);
        assert_eq!(net.transmit(Cycles::new(0), &p).count(), 1);
        assert_eq!(net.transmit(Cycles::new(1000), &p).count(), 0);
        assert_eq!(net.stats().corrupt_dropped.get(), 1);
        // The third attempt (a fresh decision index) can still get through
        // eventually; scan a few more attempts.
        let delivered = (2..30u64)
            .any(|i| net.transmit(Cycles::new(1000 + i * 500), &p).count() > 0);
        assert!(delivered, "corruption at 30% cannot black out the link forever");
    }

    #[test]
    fn block_round_trip() {
        let mut b = [0u8; BLOCK_BYTES];
        b[5] = 99;
        let p = Payload::with_block(&[], b);
        assert_eq!(p.block()[5], 99);
    }
}
