//! Point-to-point interconnect model.
//!
//! Typhoon's network (Section 5) is based on the Thinking Machines CM-5
//! network, with a larger maximum packet payload (twenty 32-bit words) and
//! **two independent virtual networks** so that a pure request/response
//! protocol is deadlock-free: requests travel on the low-priority net and
//! responses on the high-priority net, and response handlers can never be
//! starved by request handlers.
//!
//! Following the paper's methodology, the model charges a constant
//! network latency (Table 2: 11 cycles) and does not model contention.
//! An optional per-link occupancy can be configured for the latency
//! ablation (DESIGN.md §5.3).
//!
//! The network is a *passive* component: [`Network::send`] validates the
//! packet, records statistics, and returns the delivery time; the owning
//! machine schedules its own delivery event.

use tt_base::addr::BLOCK_BYTES;
use tt_base::stats::Counter;
use tt_base::{mix64, Cycles, FaultSpec, NodeId};

/// The two independent virtual networks (Section 5.1).
///
/// The scheduler gives [`VirtualNet::Request`] lower priority, so request
/// handlers cannot starve response handlers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VirtualNet {
    /// Low-priority net carrying protocol requests.
    Request,
    /// High-priority net carrying protocol responses.
    Response,
}

impl VirtualNet {
    /// Index for per-net statistics arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            VirtualNet::Request => 0,
            VirtualNet::Response => 1,
        }
    }
}

/// Maximum packet payload in bytes: twenty 32-bit words (Section 5),
/// vs. the CM-5's five.
pub const MAX_PACKET_BYTES: usize = 80;

/// Bytes charged for the handler word at the head of every message.
pub const HANDLER_WORD_BYTES: usize = 4;

/// Bytes charged per 64-bit argument word.
pub const ARG_WORD_BYTES: usize = 8;

/// A message payload: argument words plus an optional data carrier.
///
/// By Active Messages convention the *receiver's handler* is named
/// separately (see `tt-tempest`); the payload here is everything after the
/// handler word. The data carrier holds coherence-block or bulk-transfer
/// bytes (at most 64, the paper's maximum per packet).
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Payload {
    /// Argument words (addresses, counts, node ids...).
    pub words: Vec<u64>,
    /// Raw data bytes riding in the packet (0–64).
    pub data: Vec<u8>,
}

impl Payload {
    /// An empty payload.
    pub fn new() -> Self {
        Payload::default()
    }

    /// A payload of argument words only.
    pub fn args(words: Vec<u64>) -> Self {
        Payload {
            words,
            data: Vec::new(),
        }
    }

    /// A payload of argument words plus one coherence block of data.
    pub fn with_block(words: Vec<u64>, block: [u8; BLOCK_BYTES]) -> Self {
        Payload {
            words,
            data: block.to_vec(),
        }
    }

    /// Total wire size in bytes, including the handler word.
    pub fn wire_bytes(&self) -> usize {
        HANDLER_WORD_BYTES + ARG_WORD_BYTES * self.words.len() + self.data.len()
    }

    /// Interprets the data carrier as one coherence block.
    ///
    /// # Panics
    ///
    /// Panics if the payload does not carry exactly one block.
    pub fn block(&self) -> [u8; BLOCK_BYTES] {
        self.data
            .as_slice()
            .try_into()
            .expect("payload does not carry exactly one block")
    }
}

/// A packet in flight between two nodes.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Packet {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Which virtual network carries the packet.
    pub vn: VirtualNet,
    /// Receive-handler identifier (the paper's "handler PC" head word).
    pub handler: u32,
    /// Everything after the handler word.
    pub payload: Payload,
}

impl Packet {
    /// Total wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        self.payload.wire_bytes()
    }
}

/// Per-virtual-network traffic statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets sent on each virtual network.
    pub packets: [Counter; 2],
    /// Payload bytes sent on each virtual network.
    pub bytes: [Counter; 2],
    /// Packets a node sent to itself (short-circuited, never on the wire).
    pub local_packets: Counter,
    /// Wire packets the fault plan dropped outright.
    pub dropped: Counter,
    /// Extra wire copies the fault plan injected (duplications).
    pub duplicated: Counter,
    /// Wire copies whose checksum the receiver rejected (detected
    /// corruption; behaves like a drop at the protocol level).
    pub corrupt_dropped: Counter,
    /// Wire copies lost to a transient link partition.
    pub partition_lost: Counter,
}

impl NetStats {
    /// Total packets that crossed the wire.
    pub fn total_packets(&self) -> u64 {
        self.packets[0].get() + self.packets[1].get()
    }

    /// Total bytes that crossed the wire.
    pub fn total_bytes(&self) -> u64 {
        self.bytes[0].get() + self.bytes[1].get()
    }

    /// Adds another accounting's counters into this one. The parallel
    /// simulator gives each shard its own [`Network`] instance (send-side
    /// state is per-source-node, so shards never share it) and folds the
    /// statistics back together at the end of the run.
    pub fn absorb(&mut self, other: &NetStats) {
        for vn in 0..2 {
            self.packets[vn].add(other.packets[vn].get());
            self.bytes[vn].add(other.bytes[vn].get());
        }
        self.local_packets.add(other.local_packets.get());
        self.dropped.add(other.dropped.get());
        self.duplicated.add(other.duplicated.get());
        self.corrupt_dropped.add(other.corrupt_dropped.get());
        self.partition_lost.add(other.partition_lost.get());
    }

    /// Total wire copies the fault plan prevented from arriving.
    pub fn total_lost(&self) -> u64 {
        self.dropped.get() + self.corrupt_dropped.get() + self.partition_lost.get()
    }
}

/// The interconnect: latency model plus traffic accounting.
///
/// # Example
///
/// ```
/// use tt_net::{Network, Packet, Payload, VirtualNet};
/// use tt_base::{Cycles, NodeId};
///
/// let mut net = Network::new(4, Cycles::new(11));
/// let packet = Packet {
///     src: NodeId::new(0),
///     dst: NodeId::new(2),
///     vn: VirtualNet::Request,
///     handler: 7,
///     payload: Payload::args(vec![0x1000]),
/// };
/// assert_eq!(net.send(Cycles::new(100), &packet), Cycles::new(111));
/// ```
#[derive(Clone, Debug)]
pub struct Network {
    latency: Cycles,
    /// Extra cycles a packet occupies its source injection port; 0 in the
    /// paper's model (no contention), configurable for ablations.
    occupancy: Cycles,
    /// Earliest time each node's injection port is free (used only when
    /// `occupancy > 0`).
    port_free: Vec<Cycles>,
    stats: NetStats,
    /// Seeded per-packet latency jitter (`None` = the paper's constant
    /// latency). A legal-nondeterminism knob for the `tt-check` fuzzer.
    jitter: Option<Jitter>,
    /// Seeded lossy-network fault schedule (`None` = the paper's
    /// reliable interconnect). Applied only by [`Network::transmit`].
    faults: Option<FaultPlan>,
}

/// State for seeded latency jitter (see [`Network::set_jitter`]).
///
/// The extra delay for a packet is a pure hash of `(seed, src, dst,
/// per-pair packet index)` rather than a draw from an RNG *stream*: a
/// stream's draw order is global, which under the parallel simulator
/// would depend on how sends from different shards interleave. The hash
/// depends only on per-pair state that the sending node's shard owns
/// exclusively, so a jittered run is bit-identical at every thread
/// count.
#[derive(Clone, Debug)]
struct Jitter {
    seed: u64,
    max_extra: Cycles,
    /// Latest delivery time handed out for each ordered `(src, dst)`
    /// pair (`src * nodes + dst`): jitter may stretch latencies but must
    /// never reorder traffic between the same two nodes, which the
    /// protocols are entitled to assume (e.g. an INV racing past an
    /// earlier PUT_RO to the same sharer would clobber its Busy tag).
    pair_last: Vec<Cycles>,
    /// Wire packets sent so far per ordered `(src, dst)` pair.
    pair_sent: Vec<u64>,
    nodes: usize,
}

/// The serialized wire image of a packet: handler word, argument words,
/// then data bytes — the layout [`Packet::wire_bytes`] charges for.
/// Only the fault model materializes it (checksum verification of a
/// corrupted copy); the fast path never allocates.
fn wire_image(p: &Packet) -> Vec<u8> {
    let mut image = Vec::with_capacity(p.wire_bytes());
    image.extend_from_slice(&p.handler.to_le_bytes());
    for w in &p.payload.words {
        image.extend_from_slice(&w.to_le_bytes());
    }
    image.extend_from_slice(&p.payload.data);
    image
}

/// The checksum word every wire packet carries (modeled, not stored):
/// a splitmix chain over the wire image plus the routing header. Any
/// single-bit flip in the image changes it, which is what makes the
/// fault model's corruption *detectable* — a receiver verifying this
/// word discards the copy, so corruption degrades to a counted drop.
pub fn packet_checksum(routing: u64, image: &[u8]) -> u64 {
    let mut h = mix64(0x74_74_63_6B ^ routing); // "ttck"
    for (i, &b) in image.iter().enumerate() {
        h = mix64(h ^ ((b as u64) << 8) ^ i as u64);
    }
    h
}

/// Packed routing header (src, dst, vn) for [`packet_checksum`].
fn routing_word(p: &Packet) -> u64 {
    ((p.src.index() as u64) << 32) | ((p.dst.index() as u64) << 16) | p.vn.index() as u64
}

/// Delivery times [`Network::transmit`] produced for one logical send:
/// zero (dropped / corrupted / partitioned), one (the normal case), or
/// two (the fault plan duplicated the packet).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Deliveries {
    times: [Option<Cycles>; 2],
}

impl Deliveries {
    fn one(t: Cycles) -> Self {
        Deliveries { times: [Some(t), None] }
    }

    fn push(&mut self, t: Cycles) {
        if self.times[0].is_none() {
            self.times[0] = Some(t);
        } else {
            self.times[1] = Some(t);
        }
    }

    /// Number of copies that will arrive.
    pub fn count(&self) -> usize {
        self.times.iter().filter(|t| t.is_some()).count()
    }

    /// Iterates the arrival times in send order.
    pub fn iter(&self) -> impl Iterator<Item = Cycles> + '_ {
        self.times.iter().filter_map(|t| *t)
    }
}

/// Deterministic per-link fault schedule (see [`FaultSpec`]).
///
/// Like [`Jitter`], every decision is a pure hash of per-ordered-pair
/// state owned exclusively by the sending node's shard — never a draw
/// from a shared RNG stream — so a fault schedule is bit-identical at
/// any simulator thread count and replays exactly from its seed.
#[derive(Clone, Debug)]
struct FaultPlan {
    spec: FaultSpec,
    /// Logical sends considered so far per ordered `(src, dst)` pair
    /// (the per-link fault decision index).
    pair_seen: Vec<u64>,
    nodes: usize,
}

/// Salt separating the independent per-packet fault decisions.
const SALT_DROP: u64 = 0xD0;
const SALT_DUP: u64 = 0xD1;
const SALT_CORRUPT: u64 = 0xC0;
const SALT_PARTITION: u64 = 0xBA;

impl FaultPlan {
    fn new(spec: FaultSpec, nodes: usize) -> Self {
        if spec.partition_permille > 0 && spec.partition_epoch > 0 {
            assert!(
                spec.partition_run >= 2,
                "partition_run must be >= 2 so every run ends with a clear epoch"
            );
        }
        FaultPlan { spec, pair_seen: vec![0; nodes * nodes], nodes }
    }

    /// The decision hash for packet `n` on `pair` under `salt`.
    fn draw(&self, salt: u64, pair: usize, n: u64) -> u64 {
        mix64(mix64(mix64(self.spec.seed ^ salt) ^ pair as u64) ^ n)
    }

    /// Permille-threshold decision.
    fn hit(&self, salt: u64, pair: usize, n: u64, permille: u32) -> bool {
        permille > 0 && self.draw(salt, pair, n) % 1000 < permille as u64
    }

    /// Whether the ordered link is partitioned at sender time `now`.
    /// Partitions are decided per `(link, run)` and always clear before
    /// the run ends (see [`FaultSpec`]).
    fn partitioned(&self, pair: usize, now: Cycles) -> bool {
        let spec = &self.spec;
        if spec.partition_permille == 0 || spec.partition_epoch == 0 {
            return false;
        }
        let epoch = now.raw() / spec.partition_epoch;
        let run = epoch / spec.partition_run;
        let d = self.draw(SALT_PARTITION, pair, run);
        if d % 1000 >= spec.partition_permille as u64 {
            return false;
        }
        // Outage covers the first `len` epochs of the run, 1 ..= run-1.
        let len = 1 + mix64(d) % (spec.partition_run - 1);
        epoch % spec.partition_run < len
    }
}

impl Network {
    /// Creates a network with the given one-way latency for `nodes` nodes.
    pub fn new(nodes: usize, latency: Cycles) -> Self {
        Network {
            latency,
            occupancy: Cycles::ZERO,
            port_free: vec![Cycles::ZERO; nodes],
            stats: NetStats::default(),
            jitter: None,
            faults: None,
        }
    }

    /// Sets per-packet injection-port occupancy (0 = paper's model).
    pub fn set_occupancy(&mut self, occupancy: Cycles) {
        self.occupancy = occupancy;
    }

    /// Turns on seeded latency jitter: every wire packet is delayed by a
    /// deterministic extra `0..=max_extra` cycles drawn from `seed`.
    /// Delivery between the same ordered node pair stays strictly FIFO
    /// (a jittered delivery is clamped past the pair's previous one), so
    /// only latencies change, never per-link message order. Self-sends
    /// never leave the node and are not jittered.
    pub fn set_jitter(&mut self, seed: u64, max_extra: Cycles) {
        let nodes = self.port_free.len();
        self.jitter = Some(Jitter {
            seed,
            max_extra,
            pair_last: vec![Cycles::ZERO; nodes * nodes],
            pair_sent: vec![0; nodes * nodes],
            nodes,
        });
    }

    /// Installs a deterministic lossy-network fault schedule. Faults
    /// apply only to packets sent through [`Network::transmit`];
    /// [`Network::send`] (used for the machine's own control traffic —
    /// bulk data and barriers ride the CM-5's dedicated networks, which
    /// this model keeps reliable) is unaffected.
    pub fn set_fault_plan(&mut self, spec: FaultSpec) {
        let nodes = self.port_free.len();
        self.faults = Some(FaultPlan::new(spec, nodes));
    }

    /// The installed fault schedule, if any.
    pub fn fault_spec(&self) -> Option<&FaultSpec> {
        self.faults.as_ref().map(|f| &f.spec)
    }

    /// The configured one-way latency.
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    /// The minimum number of cycles between a cross-node send and its
    /// earliest possible effect at the destination — the conservative
    /// lookahead bound for WWT-style parallel simulation. Occupancy and
    /// jitter only ever *add* delay, so the base latency is the bound.
    pub fn lookahead(&self) -> Cycles {
        self.latency
    }

    /// Accepts a packet at time `now` and returns its delivery time at the
    /// destination. Packets between distinct nodes are charged the network
    /// latency; a node messaging itself short-circuits the network and is
    /// delivered after one cycle (Section 5.1).
    ///
    /// # Panics
    ///
    /// Panics if the packet exceeds [`MAX_PACKET_BYTES`] — the sender must
    /// packetize larger transfers (see `tt-tempest::bulk`).
    pub fn send(&mut self, now: Cycles, packet: &Packet) -> Cycles {
        assert!(
            packet.wire_bytes() <= MAX_PACKET_BYTES,
            "packet of {} bytes exceeds the {}-byte maximum; packetize bulk data",
            packet.wire_bytes(),
            MAX_PACKET_BYTES
        );
        if packet.src == packet.dst {
            self.stats.local_packets.inc();
            return now + Cycles::new(1);
        }
        let vn = packet.vn.index();
        self.stats.packets[vn].inc();
        self.stats.bytes[vn].add(packet.wire_bytes() as u64);
        let base = if self.occupancy == Cycles::ZERO {
            now + self.latency
        } else {
            let port = &mut self.port_free[packet.src.index()];
            let start = if *port > now { *port } else { now };
            *port = start + self.occupancy;
            start + self.occupancy + self.latency
        };
        match &mut self.jitter {
            None => base,
            Some(j) => {
                let pair = packet.src.index() * j.nodes + packet.dst.index();
                let draw = mix64(mix64(j.seed ^ pair as u64) ^ j.pair_sent[pair]);
                j.pair_sent[pair] += 1;
                let bound = j.max_extra.raw() + 1;
                let extra = Cycles::new(((draw as u128 * bound as u128) >> 64) as u64);
                let floor = j.pair_last[pair] + Cycles::new(1);
                let t = (base + extra).max(floor);
                j.pair_last[pair] = t;
                t
            }
        }
    }

    /// Accepts a packet at time `now` and returns the delivery times of
    /// every copy that will actually arrive, after applying the fault
    /// schedule (if one is installed): a transient partition or a drop
    /// yields no copies, corruption of a copy is detected by the wire
    /// checksum and discards that copy, and duplication yields a second
    /// copy. With no fault plan this is exactly [`Network::send`] —
    /// same accounting, same jitter draws, same delivery time — so the
    /// fault plumbing is cycle-neutral when unused. Self-sends never
    /// traverse the wire and are never faulted.
    ///
    /// Faulted copies are injected (and counted) like any other wire
    /// packet; delivery between an ordered node pair remains monotonic,
    /// so per-link FIFO holds for the copies that do arrive.
    pub fn transmit(&mut self, now: Cycles, packet: &Packet) -> Deliveries {
        if self.faults.is_none() || packet.src == packet.dst {
            return Deliveries::one(self.send(now, packet));
        }
        let (pair, n, partitioned) = {
            let plan = self.faults.as_mut().expect("checked above");
            let pair = packet.src.index() * plan.nodes + packet.dst.index();
            let n = plan.pair_seen[pair];
            plan.pair_seen[pair] += 1;
            (pair, n, plan.partitioned(pair, now))
        };
        let plan_decisions = |net: &Network, salt: u64| {
            let plan = net.faults.as_ref().expect("checked above");
            (
                plan.hit(SALT_DROP, pair, n, plan.spec.drop_permille),
                plan.hit(SALT_DUP, pair, n, plan.spec.dup_permille),
                plan.hit(salt, pair, n, plan.spec.corrupt_permille),
                plan.draw(salt, pair, n),
            )
        };
        // The sender injects the packet either way: it cannot observe
        // the fault, so injection stats and jitter state advance exactly
        // as on a healthy link.
        let t1 = self.send(now, packet);
        if partitioned {
            self.stats.partition_lost.inc();
            return Deliveries::default();
        }
        let (dropped, duplicated, corrupt1, draw1) = plan_decisions(self, SALT_CORRUPT);
        if dropped {
            self.stats.dropped.inc();
            return Deliveries::default();
        }
        let mut out = Deliveries::default();
        let verify_copy = |net: &mut Network, draw: u64| {
            // Model the receiver's checksum check on a corrupted copy:
            // flip one deterministic wire bit and confirm the checksum
            // word changes, then discard the copy.
            let image = wire_image(packet);
            let routing = routing_word(packet);
            let clean = packet_checksum(routing, &image);
            let bit = draw % (image.len() as u64 * 8);
            let mut flipped = image;
            flipped[(bit / 8) as usize] ^= 1 << (bit % 8);
            assert_ne!(
                packet_checksum(routing, &flipped),
                clean,
                "wire checksum failed to detect a single-bit flip"
            );
            net.stats.corrupt_dropped.inc();
        };
        if corrupt1 {
            verify_copy(self, draw1);
        } else {
            out.push(t1);
        }
        if duplicated {
            self.stats.duplicated.inc();
            // The duplicate is one more wire packet, injected at the
            // same instant; jitter's pair clamp keeps link order.
            let t2 = self.send(now, packet);
            let (_, _, corrupt2, draw2) = plan_decisions(self, SALT_CORRUPT ^ 0xFF);
            if corrupt2 {
                verify_copy(self, draw2);
            } else {
                out.push(t2.max(t1));
            }
        }
        out
    }

    /// Records traffic statistics for a packet the caller does not build.
    ///
    /// The DirNNB machine charges protocol latencies from its own cost
    /// tables and uses the network for traffic accounting only; this is
    /// the accounting half of [`Network::send`] (same packet/byte/local
    /// counters) without constructing a [`Payload`] per message or
    /// advancing injection-port state.
    pub fn count(&mut self, src: NodeId, dst: NodeId, vn: VirtualNet, wire_bytes: usize) {
        if src == dst {
            self.stats.local_packets.inc();
            return;
        }
        let vn = vn.index();
        self.stats.packets[vn].inc();
        self.stats.bytes[vn].add(wire_bytes as u64);
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Folds another instance's traffic accounting into this one (see
    /// [`NetStats::absorb`]).
    pub fn absorb_stats(&mut self, other: &Network) {
        self.stats.absorb(&other.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(src: u16, dst: u16, vn: VirtualNet, payload: Payload) -> Packet {
        Packet {
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            vn,
            handler: 1,
            payload,
        }
    }

    #[test]
    fn constant_latency() {
        let mut net = Network::new(4, Cycles::new(11));
        let p = packet(0, 1, VirtualNet::Request, Payload::args(vec![42]));
        assert_eq!(net.send(Cycles::new(100), &p), Cycles::new(111));
    }

    #[test]
    fn self_send_short_circuits() {
        let mut net = Network::new(4, Cycles::new(11));
        let p = packet(2, 2, VirtualNet::Request, Payload::new());
        assert_eq!(net.send(Cycles::new(5), &p), Cycles::new(6));
        assert_eq!(net.stats().total_packets(), 0);
        assert_eq!(net.stats().local_packets.get(), 1);
    }

    #[test]
    fn stats_split_by_virtual_net() {
        let mut net = Network::new(4, Cycles::new(11));
        let req = packet(0, 1, VirtualNet::Request, Payload::args(vec![1, 2]));
        let rsp = packet(
            1,
            0,
            VirtualNet::Response,
            Payload::with_block(vec![1], [0u8; BLOCK_BYTES]),
        );
        net.send(Cycles::ZERO, &req);
        net.send(Cycles::ZERO, &rsp);
        let s = net.stats();
        assert_eq!(s.packets[VirtualNet::Request.index()].get(), 1);
        assert_eq!(s.packets[VirtualNet::Response.index()].get(), 1);
        assert_eq!(
            s.bytes[VirtualNet::Request.index()].get(),
            (HANDLER_WORD_BYTES + 2 * ARG_WORD_BYTES) as u64
        );
        assert_eq!(
            s.bytes[VirtualNet::Response.index()].get(),
            (HANDLER_WORD_BYTES + ARG_WORD_BYTES + BLOCK_BYTES) as u64
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_packet_panics() {
        let mut net = Network::new(2, Cycles::new(11));
        // 10 args * 8B + 4B header = 84B > 80B
        let p = packet(0, 1, VirtualNet::Request, Payload::args(vec![0; 10]));
        net.send(Cycles::ZERO, &p);
    }

    #[test]
    fn max_size_packet_is_accepted() {
        let mut net = Network::new(2, Cycles::new(11));
        // 4 + 5*8 + 32 = 76 <= 80
        let p = packet(
            0,
            1,
            VirtualNet::Response,
            Payload::with_block(vec![0; 5], [7u8; BLOCK_BYTES]),
        );
        net.send(Cycles::ZERO, &p);
        assert_eq!(net.stats().total_bytes(), 76);
    }

    #[test]
    fn occupancy_serializes_injection() {
        let mut net = Network::new(2, Cycles::new(10));
        net.set_occupancy(Cycles::new(4));
        let p = packet(0, 1, VirtualNet::Request, Payload::new());
        assert_eq!(net.send(Cycles::new(0), &p), Cycles::new(14));
        // Second packet at the same instant waits for the port.
        assert_eq!(net.send(Cycles::new(0), &p), Cycles::new(18));
        // A later packet from the other node is unaffected.
        let q = packet(1, 0, VirtualNet::Request, Payload::new());
        assert_eq!(net.send(Cycles::new(0), &q), Cycles::new(14));
    }

    #[test]
    fn jitter_stays_within_band_and_is_deterministic() {
        let deliveries = |seed: u64| {
            let mut net = Network::new(4, Cycles::new(11));
            net.set_jitter(seed, Cycles::new(3));
            let p = packet(0, 1, VirtualNet::Request, Payload::new());
            (0..100)
                .map(|i| net.send(Cycles::new(i * 50), &p).raw())
                .collect::<Vec<_>>()
        };
        let a = deliveries(42);
        assert_eq!(a, deliveries(42), "same seed, same deliveries");
        assert_ne!(a, deliveries(43));
        for (i, &t) in a.iter().enumerate() {
            let base = i as u64 * 50 + 11;
            assert!((base..=base + 3).contains(&t), "delivery {t} off-band");
        }
        assert!(
            a.iter().enumerate().any(|(i, &t)| t != i as u64 * 50 + 11),
            "seed 42 should actually jitter something"
        );
    }

    #[test]
    fn jitter_preserves_per_pair_fifo() {
        let mut net = Network::new(4, Cycles::new(11));
        net.set_jitter(7, Cycles::new(3));
        let p = packet(0, 1, VirtualNet::Request, Payload::new());
        let q = packet(0, 1, VirtualNet::Response, Payload::new());
        let mut last = Cycles::ZERO;
        // Closely spaced sends on both vns: deliveries must be strictly
        // increasing for the ordered pair even when jitter would reorder.
        for i in 0..200u64 {
            let pk = if i % 2 == 0 { &p } else { &q };
            let t = net.send(Cycles::new(i), pk);
            assert!(t > last, "pair FIFO violated: {t:?} <= {last:?}");
            last = t;
        }
    }

    #[test]
    fn jitter_leaves_self_sends_alone() {
        let mut net = Network::new(4, Cycles::new(11));
        net.set_jitter(1, Cycles::new(3));
        let p = packet(2, 2, VirtualNet::Request, Payload::new());
        for i in 0..20 {
            assert_eq!(net.send(Cycles::new(i), &p), Cycles::new(i + 1));
        }
    }

    #[test]
    fn no_jitter_means_constant_latency() {
        let mut net = Network::new(4, Cycles::new(11));
        let p = packet(0, 3, VirtualNet::Response, Payload::new());
        for i in 0..20 {
            assert_eq!(net.send(Cycles::new(i * 100), &p), Cycles::new(i * 100 + 11));
        }
    }

    fn quiet_spec(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            drop_permille: 0,
            dup_permille: 0,
            corrupt_permille: 0,
            partition_permille: 0,
            partition_epoch: 0,
            partition_run: 4,
        }
    }

    #[test]
    fn transmit_without_plan_equals_send() {
        let mut a = Network::new(4, Cycles::new(11));
        let mut b = Network::new(4, Cycles::new(11));
        let p = packet(0, 1, VirtualNet::Request, Payload::args(vec![1]));
        for i in 0..50u64 {
            let d = a.transmit(Cycles::new(i * 7), &p);
            let t = b.send(Cycles::new(i * 7), &p);
            assert_eq!(d.iter().collect::<Vec<_>>(), vec![t]);
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn zero_rate_plan_is_cycle_neutral() {
        let mut a = Network::new(4, Cycles::new(11));
        a.set_jitter(9, Cycles::new(3));
        a.set_fault_plan(quiet_spec(1234));
        let mut b = Network::new(4, Cycles::new(11));
        b.set_jitter(9, Cycles::new(3));
        let p = packet(0, 1, VirtualNet::Request, Payload::args(vec![1]));
        for i in 0..100u64 {
            let d = a.transmit(Cycles::new(i * 5), &p);
            let t = b.send(Cycles::new(i * 5), &p);
            assert_eq!(d.iter().collect::<Vec<_>>(), vec![t], "send {i}");
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.stats().total_lost(), 0);
    }

    #[test]
    fn faulty_transmission_is_deterministic_and_counted() {
        let run = || {
            let mut net = Network::new(4, Cycles::new(11));
            let mut spec = quiet_spec(42);
            spec.drop_permille = 300;
            spec.dup_permille = 300;
            spec.corrupt_permille = 200;
            net.set_fault_plan(spec);
            let p = packet(0, 1, VirtualNet::Request, Payload::args(vec![7, 8]));
            let pattern: Vec<Vec<u64>> = (0..300u64)
                .map(|i| net.transmit(Cycles::new(i * 20), &p).iter().map(Cycles::raw).collect())
                .collect();
            (pattern, net.stats().clone())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b, "same seed, same fault schedule");
        assert_eq!(sa, sb);
        assert!(sa.dropped.get() > 0, "drops must fire at 30%");
        assert!(sa.duplicated.get() > 0, "dups must fire at 30%");
        assert!(sa.corrupt_dropped.get() > 0, "corruption must fire at 20%");
        assert!(a.iter().any(|d| d.len() == 2), "some send must deliver twice");
        assert!(a.iter().any(|d| d.is_empty()), "some send must deliver never");
        // Fault decisions are per ordered pair: a different link with the
        // same seed sees a different schedule.
        let mut net = Network::new(4, Cycles::new(11));
        let mut spec = quiet_spec(42);
        spec.drop_permille = 300;
        spec.dup_permille = 300;
        spec.corrupt_permille = 200;
        net.set_fault_plan(spec);
        let q = packet(2, 3, VirtualNet::Request, Payload::args(vec![7, 8]));
        let other: Vec<Vec<u64>> = (0..300u64)
            .map(|i| net.transmit(Cycles::new(i * 20), &q).iter().map(Cycles::raw).collect())
            .collect();
        let a_shape: Vec<usize> = a.iter().map(Vec::len).collect();
        let o_shape: Vec<usize> = other.iter().map(Vec::len).collect();
        assert_ne!(a_shape, o_shape, "links draw independent schedules");
    }

    #[test]
    fn faulty_transmission_keeps_per_pair_fifo() {
        let mut net = Network::new(4, Cycles::new(11));
        net.set_jitter(7, Cycles::new(5));
        let mut spec = quiet_spec(3);
        spec.drop_permille = 200;
        spec.dup_permille = 400;
        net.set_fault_plan(spec);
        let p = packet(0, 1, VirtualNet::Request, Payload::new());
        let mut last = Cycles::ZERO;
        for i in 0..400u64 {
            for t in net.transmit(Cycles::new(i), &p).iter() {
                assert!(t >= last, "pair FIFO violated: {t:?} < {last:?}");
                last = t;
            }
        }
    }

    #[test]
    fn partitions_are_bounded_and_heal_before_the_run_ends() {
        let mut spec = quiet_spec(99);
        spec.partition_permille = 1000; // every run partitioned
        spec.partition_epoch = 100;
        spec.partition_run = 4;
        let mut net = Network::new(2, Cycles::new(11));
        net.set_fault_plan(spec);
        let p = packet(0, 1, VirtualNet::Request, Payload::new());
        let mut lost_some = false;
        for run in 0..20u64 {
            // The last epoch of every run must be clear.
            let t_last = Cycles::new((run * 4 + 3) * 100 + 50);
            assert_eq!(net.transmit(t_last, &p).count(), 1, "run {run} last epoch not clear");
            // The first epoch of a partitioned run is blacked out.
            let t_first = Cycles::new(run * 4 * 100 + 50);
            if net.transmit(t_first, &p).count() == 0 {
                lost_some = true;
            }
        }
        assert!(lost_some, "a fully partition-prone plan must lose packets");
        assert!(net.stats().partition_lost.get() > 0);
    }

    #[test]
    fn checksum_detects_every_single_bit_flip() {
        let p = packet(
            1,
            2,
            VirtualNet::Response,
            Payload::with_block(vec![0xDEAD_BEEF, 42], [0xA5u8; BLOCK_BYTES]),
        );
        let image = wire_image(&p);
        assert_eq!(image.len(), p.wire_bytes());
        let routing = routing_word(&p);
        let clean = packet_checksum(routing, &image);
        for bit in 0..image.len() * 8 {
            let mut flipped = image.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(packet_checksum(routing, &flipped), clean, "bit {bit} undetected");
        }
        // The routing header is covered too (a misrouted copy is detected).
        assert_ne!(packet_checksum(routing ^ 1, &image), clean);
    }

    #[test]
    fn corruption_of_a_retransmitted_copy_is_detected_and_dropped() {
        // Find a seed whose link-(0,1) schedule delivers the original
        // (decision index 0) but corrupts the retransmitted copy
        // (decision index 1) — the edge case where the retry itself is
        // damaged and a further retry must follow.
        let mut spec = quiet_spec(0);
        spec.corrupt_permille = 300;
        let p = packet(0, 1, VirtualNet::Request, Payload::args(vec![5]));
        let seed = (0..500u64)
            .find(|&s| {
                let mut net = Network::new(2, Cycles::new(11));
                spec.seed = s;
                net.set_fault_plan(spec);
                let first = net.transmit(Cycles::new(0), &p).count();
                let second = net.transmit(Cycles::new(1000), &p).count();
                first == 1 && second == 0
            })
            .expect("some seed corrupts exactly the retransmission");
        let mut net = Network::new(2, Cycles::new(11));
        spec.seed = seed;
        net.set_fault_plan(spec);
        assert_eq!(net.transmit(Cycles::new(0), &p).count(), 1);
        assert_eq!(net.transmit(Cycles::new(1000), &p).count(), 0);
        assert_eq!(net.stats().corrupt_dropped.get(), 1);
        // The third attempt (a fresh decision index) can still get through
        // eventually; scan a few more attempts.
        let delivered = (2..30u64)
            .any(|i| net.transmit(Cycles::new(1000 + i * 500), &p).count() > 0);
        assert!(delivered, "corruption at 30% cannot black out the link forever");
    }

    #[test]
    fn block_round_trip() {
        let mut b = [0u8; BLOCK_BYTES];
        b[5] = 99;
        let p = Payload::with_block(vec![], b);
        assert_eq!(p.block()[5], 99);
    }
}
