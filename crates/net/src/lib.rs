//! Point-to-point interconnect model.
//!
//! Typhoon's network (Section 5) is based on the Thinking Machines CM-5
//! network, with a larger maximum packet payload (twenty 32-bit words) and
//! **two independent virtual networks** so that a pure request/response
//! protocol is deadlock-free: requests travel on the low-priority net and
//! responses on the high-priority net, and response handlers can never be
//! starved by request handlers.
//!
//! Following the paper's methodology, the model charges a constant
//! network latency (Table 2: 11 cycles) and does not model contention.
//! An optional per-link occupancy can be configured for the latency
//! ablation (DESIGN.md §5.3).
//!
//! The network is a *passive* component: [`Network::send`] validates the
//! packet, records statistics, and returns the delivery time; the owning
//! machine schedules its own delivery event.

use tt_base::addr::BLOCK_BYTES;
use tt_base::stats::Counter;
use tt_base::{mix64, Cycles, NodeId};

/// The two independent virtual networks (Section 5.1).
///
/// The scheduler gives [`VirtualNet::Request`] lower priority, so request
/// handlers cannot starve response handlers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VirtualNet {
    /// Low-priority net carrying protocol requests.
    Request,
    /// High-priority net carrying protocol responses.
    Response,
}

impl VirtualNet {
    /// Index for per-net statistics arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            VirtualNet::Request => 0,
            VirtualNet::Response => 1,
        }
    }
}

/// Maximum packet payload in bytes: twenty 32-bit words (Section 5),
/// vs. the CM-5's five.
pub const MAX_PACKET_BYTES: usize = 80;

/// Bytes charged for the handler word at the head of every message.
pub const HANDLER_WORD_BYTES: usize = 4;

/// Bytes charged per 64-bit argument word.
pub const ARG_WORD_BYTES: usize = 8;

/// A message payload: argument words plus an optional data carrier.
///
/// By Active Messages convention the *receiver's handler* is named
/// separately (see `tt-tempest`); the payload here is everything after the
/// handler word. The data carrier holds coherence-block or bulk-transfer
/// bytes (at most 64, the paper's maximum per packet).
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Payload {
    /// Argument words (addresses, counts, node ids...).
    pub words: Vec<u64>,
    /// Raw data bytes riding in the packet (0–64).
    pub data: Vec<u8>,
}

impl Payload {
    /// An empty payload.
    pub fn new() -> Self {
        Payload::default()
    }

    /// A payload of argument words only.
    pub fn args(words: Vec<u64>) -> Self {
        Payload {
            words,
            data: Vec::new(),
        }
    }

    /// A payload of argument words plus one coherence block of data.
    pub fn with_block(words: Vec<u64>, block: [u8; BLOCK_BYTES]) -> Self {
        Payload {
            words,
            data: block.to_vec(),
        }
    }

    /// Total wire size in bytes, including the handler word.
    pub fn wire_bytes(&self) -> usize {
        HANDLER_WORD_BYTES + ARG_WORD_BYTES * self.words.len() + self.data.len()
    }

    /// Interprets the data carrier as one coherence block.
    ///
    /// # Panics
    ///
    /// Panics if the payload does not carry exactly one block.
    pub fn block(&self) -> [u8; BLOCK_BYTES] {
        self.data
            .as_slice()
            .try_into()
            .expect("payload does not carry exactly one block")
    }
}

/// A packet in flight between two nodes.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Packet {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Which virtual network carries the packet.
    pub vn: VirtualNet,
    /// Receive-handler identifier (the paper's "handler PC" head word).
    pub handler: u32,
    /// Everything after the handler word.
    pub payload: Payload,
}

impl Packet {
    /// Total wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        self.payload.wire_bytes()
    }
}

/// Per-virtual-network traffic statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets sent on each virtual network.
    pub packets: [Counter; 2],
    /// Payload bytes sent on each virtual network.
    pub bytes: [Counter; 2],
    /// Packets a node sent to itself (short-circuited, never on the wire).
    pub local_packets: Counter,
}

impl NetStats {
    /// Total packets that crossed the wire.
    pub fn total_packets(&self) -> u64 {
        self.packets[0].get() + self.packets[1].get()
    }

    /// Total bytes that crossed the wire.
    pub fn total_bytes(&self) -> u64 {
        self.bytes[0].get() + self.bytes[1].get()
    }

    /// Adds another accounting's counters into this one. The parallel
    /// simulator gives each shard its own [`Network`] instance (send-side
    /// state is per-source-node, so shards never share it) and folds the
    /// statistics back together at the end of the run.
    pub fn absorb(&mut self, other: &NetStats) {
        for vn in 0..2 {
            self.packets[vn].add(other.packets[vn].get());
            self.bytes[vn].add(other.bytes[vn].get());
        }
        self.local_packets.add(other.local_packets.get());
    }
}

/// The interconnect: latency model plus traffic accounting.
///
/// # Example
///
/// ```
/// use tt_net::{Network, Packet, Payload, VirtualNet};
/// use tt_base::{Cycles, NodeId};
///
/// let mut net = Network::new(4, Cycles::new(11));
/// let packet = Packet {
///     src: NodeId::new(0),
///     dst: NodeId::new(2),
///     vn: VirtualNet::Request,
///     handler: 7,
///     payload: Payload::args(vec![0x1000]),
/// };
/// assert_eq!(net.send(Cycles::new(100), &packet), Cycles::new(111));
/// ```
#[derive(Clone, Debug)]
pub struct Network {
    latency: Cycles,
    /// Extra cycles a packet occupies its source injection port; 0 in the
    /// paper's model (no contention), configurable for ablations.
    occupancy: Cycles,
    /// Earliest time each node's injection port is free (used only when
    /// `occupancy > 0`).
    port_free: Vec<Cycles>,
    stats: NetStats,
    /// Seeded per-packet latency jitter (`None` = the paper's constant
    /// latency). A legal-nondeterminism knob for the `tt-check` fuzzer.
    jitter: Option<Jitter>,
}

/// State for seeded latency jitter (see [`Network::set_jitter`]).
///
/// The extra delay for a packet is a pure hash of `(seed, src, dst,
/// per-pair packet index)` rather than a draw from an RNG *stream*: a
/// stream's draw order is global, which under the parallel simulator
/// would depend on how sends from different shards interleave. The hash
/// depends only on per-pair state that the sending node's shard owns
/// exclusively, so a jittered run is bit-identical at every thread
/// count.
#[derive(Clone, Debug)]
struct Jitter {
    seed: u64,
    max_extra: Cycles,
    /// Latest delivery time handed out for each ordered `(src, dst)`
    /// pair (`src * nodes + dst`): jitter may stretch latencies but must
    /// never reorder traffic between the same two nodes, which the
    /// protocols are entitled to assume (e.g. an INV racing past an
    /// earlier PUT_RO to the same sharer would clobber its Busy tag).
    pair_last: Vec<Cycles>,
    /// Wire packets sent so far per ordered `(src, dst)` pair.
    pair_sent: Vec<u64>,
    nodes: usize,
}

impl Network {
    /// Creates a network with the given one-way latency for `nodes` nodes.
    pub fn new(nodes: usize, latency: Cycles) -> Self {
        Network {
            latency,
            occupancy: Cycles::ZERO,
            port_free: vec![Cycles::ZERO; nodes],
            stats: NetStats::default(),
            jitter: None,
        }
    }

    /// Sets per-packet injection-port occupancy (0 = paper's model).
    pub fn set_occupancy(&mut self, occupancy: Cycles) {
        self.occupancy = occupancy;
    }

    /// Turns on seeded latency jitter: every wire packet is delayed by a
    /// deterministic extra `0..=max_extra` cycles drawn from `seed`.
    /// Delivery between the same ordered node pair stays strictly FIFO
    /// (a jittered delivery is clamped past the pair's previous one), so
    /// only latencies change, never per-link message order. Self-sends
    /// never leave the node and are not jittered.
    pub fn set_jitter(&mut self, seed: u64, max_extra: Cycles) {
        let nodes = self.port_free.len();
        self.jitter = Some(Jitter {
            seed,
            max_extra,
            pair_last: vec![Cycles::ZERO; nodes * nodes],
            pair_sent: vec![0; nodes * nodes],
            nodes,
        });
    }

    /// The configured one-way latency.
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    /// The minimum number of cycles between a cross-node send and its
    /// earliest possible effect at the destination — the conservative
    /// lookahead bound for WWT-style parallel simulation. Occupancy and
    /// jitter only ever *add* delay, so the base latency is the bound.
    pub fn lookahead(&self) -> Cycles {
        self.latency
    }

    /// Accepts a packet at time `now` and returns its delivery time at the
    /// destination. Packets between distinct nodes are charged the network
    /// latency; a node messaging itself short-circuits the network and is
    /// delivered after one cycle (Section 5.1).
    ///
    /// # Panics
    ///
    /// Panics if the packet exceeds [`MAX_PACKET_BYTES`] — the sender must
    /// packetize larger transfers (see `tt-tempest::bulk`).
    pub fn send(&mut self, now: Cycles, packet: &Packet) -> Cycles {
        assert!(
            packet.wire_bytes() <= MAX_PACKET_BYTES,
            "packet of {} bytes exceeds the {}-byte maximum; packetize bulk data",
            packet.wire_bytes(),
            MAX_PACKET_BYTES
        );
        if packet.src == packet.dst {
            self.stats.local_packets.inc();
            return now + Cycles::new(1);
        }
        let vn = packet.vn.index();
        self.stats.packets[vn].inc();
        self.stats.bytes[vn].add(packet.wire_bytes() as u64);
        let base = if self.occupancy == Cycles::ZERO {
            now + self.latency
        } else {
            let port = &mut self.port_free[packet.src.index()];
            let start = if *port > now { *port } else { now };
            *port = start + self.occupancy;
            start + self.occupancy + self.latency
        };
        match &mut self.jitter {
            None => base,
            Some(j) => {
                let pair = packet.src.index() * j.nodes + packet.dst.index();
                let draw = mix64(mix64(j.seed ^ pair as u64) ^ j.pair_sent[pair]);
                j.pair_sent[pair] += 1;
                let bound = j.max_extra.raw() + 1;
                let extra = Cycles::new(((draw as u128 * bound as u128) >> 64) as u64);
                let floor = j.pair_last[pair] + Cycles::new(1);
                let t = (base + extra).max(floor);
                j.pair_last[pair] = t;
                t
            }
        }
    }

    /// Records traffic statistics for a packet the caller does not build.
    ///
    /// The DirNNB machine charges protocol latencies from its own cost
    /// tables and uses the network for traffic accounting only; this is
    /// the accounting half of [`Network::send`] (same packet/byte/local
    /// counters) without constructing a [`Payload`] per message or
    /// advancing injection-port state.
    pub fn count(&mut self, src: NodeId, dst: NodeId, vn: VirtualNet, wire_bytes: usize) {
        if src == dst {
            self.stats.local_packets.inc();
            return;
        }
        let vn = vn.index();
        self.stats.packets[vn].inc();
        self.stats.bytes[vn].add(wire_bytes as u64);
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Folds another instance's traffic accounting into this one (see
    /// [`NetStats::absorb`]).
    pub fn absorb_stats(&mut self, other: &Network) {
        self.stats.absorb(&other.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(src: u16, dst: u16, vn: VirtualNet, payload: Payload) -> Packet {
        Packet {
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            vn,
            handler: 1,
            payload,
        }
    }

    #[test]
    fn constant_latency() {
        let mut net = Network::new(4, Cycles::new(11));
        let p = packet(0, 1, VirtualNet::Request, Payload::args(vec![42]));
        assert_eq!(net.send(Cycles::new(100), &p), Cycles::new(111));
    }

    #[test]
    fn self_send_short_circuits() {
        let mut net = Network::new(4, Cycles::new(11));
        let p = packet(2, 2, VirtualNet::Request, Payload::new());
        assert_eq!(net.send(Cycles::new(5), &p), Cycles::new(6));
        assert_eq!(net.stats().total_packets(), 0);
        assert_eq!(net.stats().local_packets.get(), 1);
    }

    #[test]
    fn stats_split_by_virtual_net() {
        let mut net = Network::new(4, Cycles::new(11));
        let req = packet(0, 1, VirtualNet::Request, Payload::args(vec![1, 2]));
        let rsp = packet(
            1,
            0,
            VirtualNet::Response,
            Payload::with_block(vec![1], [0u8; BLOCK_BYTES]),
        );
        net.send(Cycles::ZERO, &req);
        net.send(Cycles::ZERO, &rsp);
        let s = net.stats();
        assert_eq!(s.packets[VirtualNet::Request.index()].get(), 1);
        assert_eq!(s.packets[VirtualNet::Response.index()].get(), 1);
        assert_eq!(
            s.bytes[VirtualNet::Request.index()].get(),
            (HANDLER_WORD_BYTES + 2 * ARG_WORD_BYTES) as u64
        );
        assert_eq!(
            s.bytes[VirtualNet::Response.index()].get(),
            (HANDLER_WORD_BYTES + ARG_WORD_BYTES + BLOCK_BYTES) as u64
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_packet_panics() {
        let mut net = Network::new(2, Cycles::new(11));
        // 10 args * 8B + 4B header = 84B > 80B
        let p = packet(0, 1, VirtualNet::Request, Payload::args(vec![0; 10]));
        net.send(Cycles::ZERO, &p);
    }

    #[test]
    fn max_size_packet_is_accepted() {
        let mut net = Network::new(2, Cycles::new(11));
        // 4 + 5*8 + 32 = 76 <= 80
        let p = packet(
            0,
            1,
            VirtualNet::Response,
            Payload::with_block(vec![0; 5], [7u8; BLOCK_BYTES]),
        );
        net.send(Cycles::ZERO, &p);
        assert_eq!(net.stats().total_bytes(), 76);
    }

    #[test]
    fn occupancy_serializes_injection() {
        let mut net = Network::new(2, Cycles::new(10));
        net.set_occupancy(Cycles::new(4));
        let p = packet(0, 1, VirtualNet::Request, Payload::new());
        assert_eq!(net.send(Cycles::new(0), &p), Cycles::new(14));
        // Second packet at the same instant waits for the port.
        assert_eq!(net.send(Cycles::new(0), &p), Cycles::new(18));
        // A later packet from the other node is unaffected.
        let q = packet(1, 0, VirtualNet::Request, Payload::new());
        assert_eq!(net.send(Cycles::new(0), &q), Cycles::new(14));
    }

    #[test]
    fn jitter_stays_within_band_and_is_deterministic() {
        let deliveries = |seed: u64| {
            let mut net = Network::new(4, Cycles::new(11));
            net.set_jitter(seed, Cycles::new(3));
            let p = packet(0, 1, VirtualNet::Request, Payload::new());
            (0..100)
                .map(|i| net.send(Cycles::new(i * 50), &p).raw())
                .collect::<Vec<_>>()
        };
        let a = deliveries(42);
        assert_eq!(a, deliveries(42), "same seed, same deliveries");
        assert_ne!(a, deliveries(43));
        for (i, &t) in a.iter().enumerate() {
            let base = i as u64 * 50 + 11;
            assert!((base..=base + 3).contains(&t), "delivery {t} off-band");
        }
        assert!(
            a.iter().enumerate().any(|(i, &t)| t != i as u64 * 50 + 11),
            "seed 42 should actually jitter something"
        );
    }

    #[test]
    fn jitter_preserves_per_pair_fifo() {
        let mut net = Network::new(4, Cycles::new(11));
        net.set_jitter(7, Cycles::new(3));
        let p = packet(0, 1, VirtualNet::Request, Payload::new());
        let q = packet(0, 1, VirtualNet::Response, Payload::new());
        let mut last = Cycles::ZERO;
        // Closely spaced sends on both vns: deliveries must be strictly
        // increasing for the ordered pair even when jitter would reorder.
        for i in 0..200u64 {
            let pk = if i % 2 == 0 { &p } else { &q };
            let t = net.send(Cycles::new(i), pk);
            assert!(t > last, "pair FIFO violated: {t:?} <= {last:?}");
            last = t;
        }
    }

    #[test]
    fn jitter_leaves_self_sends_alone() {
        let mut net = Network::new(4, Cycles::new(11));
        net.set_jitter(1, Cycles::new(3));
        let p = packet(2, 2, VirtualNet::Request, Payload::new());
        for i in 0..20 {
            assert_eq!(net.send(Cycles::new(i), &p), Cycles::new(i + 1));
        }
    }

    #[test]
    fn no_jitter_means_constant_latency() {
        let mut net = Network::new(4, Cycles::new(11));
        let p = packet(0, 3, VirtualNet::Response, Payload::new());
        for i in 0..20 {
            assert_eq!(net.send(Cycles::new(i * 100), &p), Cycles::new(i * 100 + 11));
        }
    }

    #[test]
    fn block_round_trip() {
        let mut b = [0u8; BLOCK_BYTES];
        b[5] = 99;
        let p = Payload::with_block(vec![], b);
        assert_eq!(p.block()[5], 99);
    }
}
