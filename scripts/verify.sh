#!/usr/bin/env sh
# Full local verification: release build, workspace tests, lint, and a
# tiny end-to-end figure3 smoke that exercises the parallel sweep path.
# Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> figure3 smoke (--scale 64 --nodes 8 --jobs 2)"
cargo run --release -p tt-bench --bin figure3 -- \
    --scale 64 --nodes 8 --jobs 2 >/dev/null

# Same smoke under the parallel simulator: --sim-threads 2 shards each
# simulation's event queue across two OS threads, and the binary's
# built-in canary asserts the cycle tables match a sequential rerun.
echo "==> figure3 smoke, parallel simulator (--sim-threads 2)"
cargo run --release -p tt-bench --bin figure3 -- \
    --scale 64 --nodes 8 --jobs 2 --sim-threads 2 >/dev/null

# Adaptive windowing: same canary-checked smoke with the idle-skipping
# per-shard window bounds in place of the fixed quantum. Cycle tables
# must be byte-identical; only the rendezvous count may change.
echo "==> figure3 smoke, adaptive windows (--sim-threads 2 --window-policy adaptive)"
cargo run --release -p tt-bench --bin figure3 -- \
    --scale 64 --nodes 8 --jobs 2 --sim-threads 2 --window-policy adaptive >/dev/null

# Bounded model-checking sweep (fixed seeds, well under a minute): 500
# litmus cases under schedule perturbation — including the
# sequential-vs-parallel simulator differential on the seeds that draw
# sim_threads > 1 — must run clean on both machines, and a planted
# protocol bug must be caught. On failure tt-check prints the seed;
# reproduce with `tt-check replay --seed S [--sim-threads N]`.
echo "==> tt-check smoke (500 seeds clean + planted bug caught)"
cargo run --release -p tt-bench --bin tt-check -- run --seeds 500
cargo run --release -p tt-bench --bin tt-check -- run --seeds 500 --planted-bug

# A dedicated 200-seed window re-checked with the parallel leg forced
# on every case: each litmus workload runs sequentially and at 2
# simulator threads, and cycles plus final memory images must match
# bit for bit.
echo "==> tt-check parallel differential (200 seeds, forced --sim-threads 2)"
cargo run --release -p tt-bench --bin tt-check -- \
    run --seeds 200 --sim-threads 2

# The same 200-seed window with the adaptive window policy forced on the
# parallel leg: idle-window batching and lookahead widening must never
# change cycles or memory images.
echo "==> tt-check adaptive differential (200 seeds, forced adaptive windows)"
cargo run --release -p tt-bench --bin tt-check -- \
    run --seeds 200 --sim-threads 2 --window-policy adaptive

# KV-serving smoke (tt-serve): the same sweep twice, once parallel
# across points and once under the parallel simulator with adaptive
# windows. Latency percentiles and cycle counts print to stdout (wall
# rates go to stderr), so the two tables must be byte-identical.
echo "==> kv_bench smoke (sweep parallelism vs parallel simulator, identical stdout)"
cargo run --release -p tt-bench --bin kv_bench -- \
    --nodes 8 --keys 512 --requests 100 --jobs 2 >/tmp/kv_a.txt
cargo run --release -p tt-bench --bin kv_bench -- \
    --nodes 8 --keys 512 --requests 100 \
    --sim-threads 2 --window-policy adaptive >/tmp/kv_b.txt
cmp /tmp/kv_a.txt /tmp/kv_b.txt

# --fault-rate 0 must be cycle-neutral: with no fault schedule nothing
# is wrapped in the reliable transport and the table stays byte-
# identical. A nonzero rate runs the same sweep over a lossy network
# (the parallel-simulator identity canary inside the binary still
# holds) and must complete every request.
echo "==> kv_bench fault smoke (--fault-rate 0 byte-identical; lossy sweep completes)"
cargo run --release -p tt-bench --bin kv_bench -- \
    --nodes 8 --keys 512 --requests 100 --jobs 2 --fault-rate 0 >/tmp/kv_c.txt
cmp /tmp/kv_a.txt /tmp/kv_c.txt
cargo run --release -p tt-bench --bin kv_bench -- \
    --nodes 8 --keys 512 --requests 100 --jobs 2 \
    --fault-rate 30 --sim-threads 2 >/dev/null
rm -f /tmp/kv_a.txt /tmp/kv_b.txt /tmp/kv_c.txt

# Lossy-network fault fuzzing: 200 seeds with a per-seed fault schedule
# (drops, duplicates, detected corruption, transient partitions) drawn
# from the case seed; the stock Stache behind the reliable transport
# must pass the full invariant set and the differential final-image
# check on every seed. On failure tt-check prints the seed; reproduce
# with `tt-check replay --seed S --faults`. A planted transport bug
# (retransmission without duplicate suppression) must be caught and
# shrunk to a minimal fault schedule.
echo "==> tt-check fault fuzz (200 lossy seeds clean + planted transport bug caught)"
cargo run --release -p tt-bench --bin tt-check -- run --seeds 200 --faults
cargo run --release -p tt-bench --bin tt-check -- \
    run --seeds 300 --faults --planted-bug

# Fault-schedule determinism: one forced fault seed replayed twice at 3
# simulator threads must produce byte-identical output (cycles and
# image digests), proving the fault schedule is keyed off deterministic
# merge state, not arrival order.
echo "==> tt-check fault replay determinism (--fault-seed, 2x at --sim-threads 3)"
cargo run --release -p tt-bench --bin tt-check -- \
    replay --seed 11 --faults --fault-seed 64023 --sim-threads 3 >/tmp/ttfr_a.txt
cargo run --release -p tt-bench --bin tt-check -- \
    replay --seed 11 --faults --fault-seed 64023 --sim-threads 3 >/tmp/ttfr_b.txt
cmp /tmp/ttfr_a.txt /tmp/ttfr_b.txt
rm -f /tmp/ttfr_a.txt /tmp/ttfr_b.txt

# KV litmus family: put/get races over tt-serve key slots, run
# differentially on three machines (Stache-served, write-update-served,
# DirNNB) with word-for-word image agreement, then a window with the
# parallel simulator forced on every seed.
echo "==> tt-check kv (200 seeds + 100 forced-parallel seeds + 100 lossy seeds)"
cargo run --release -p tt-bench --bin tt-check -- kv --seeds 200
cargo run --release -p tt-bench --bin tt-check -- \
    kv --seeds 100 --sim-threads 2 --window-policy adaptive
cargo run --release -p tt-bench --bin tt-check -- kv --seeds 100 --faults

# Big-machine smoke: a 256-node mesh figure-3 point. The cycle table
# must be bit-identical between the sequential and the 2-thread
# parallel simulator (routed-topology lookahead = one mesh hop), and
# the heap high-water mark per node must stay within 2x of the
# committed results/BENCH_figure3_256_mesh.json snapshot — the guard
# that keeps the compact directory state compact.
echo "==> figure3 big-machine smoke (256-node mesh, seq vs --sim-threads 2 + memory guard)"
cargo run --release -p tt-bench --bin figure3 -- \
    --nodes 256 --topology mesh --apps em3d --scale 64 --jobs 1 \
    --json /tmp/fig3_mesh256.json >/tmp/fig3_mesh256_a.txt
cargo run --release -p tt-bench --bin figure3 -- \
    --nodes 256 --topology mesh --apps em3d --scale 64 --jobs 1 \
    --sim-threads 2 >/tmp/fig3_mesh256_b.txt
cmp /tmp/fig3_mesh256_a.txt /tmp/fig3_mesh256_b.txt
new_bpn=$(grep -o '"bytes_per_node": [0-9]*' /tmp/fig3_mesh256.json \
    | head -1 | tr -dc 0-9)
old_bpn=$(grep -o '"bytes_per_node": [0-9]*' results/BENCH_figure3_256_mesh.json \
    | head -1 | tr -dc 0-9)
if [ "$new_bpn" -gt $((old_bpn * 2)) ]; then
    echo "FAIL: 256-node mesh bytes/node regressed >2x: $new_bpn vs snapshot $old_bpn"
    exit 1
fi
echo "    bytes/node $new_bpn (snapshot $old_bpn, guard 2x)"
rm -f /tmp/fig3_mesh256.json /tmp/fig3_mesh256_a.txt /tmp/fig3_mesh256_b.txt

echo "==> examples build"
cargo build --release --examples

echo "==> verify OK"
