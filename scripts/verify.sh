#!/usr/bin/env sh
# Full local verification: release build, workspace tests, lint, and a
# tiny end-to-end figure3 smoke that exercises the parallel sweep path.
# Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> figure3 smoke (--scale 64 --nodes 8 --jobs 2)"
cargo run --release -p tt-bench --bin figure3 -- \
    --scale 64 --nodes 8 --jobs 2 >/dev/null

# Bounded model-checking sweep (fixed seeds, well under a minute): 500
# litmus cases under schedule perturbation must run clean on both
# machines, and a planted protocol bug must be caught. On failure
# tt-check prints the seed; reproduce with `tt-check replay --seed S`.
echo "==> tt-check smoke (500 seeds clean + planted bug caught)"
cargo run --release -p tt-bench --bin tt-check -- run --seeds 500
cargo run --release -p tt-bench --bin tt-check -- run --seeds 500 --planted-bug

echo "==> verify OK"
