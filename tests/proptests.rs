//! Randomized property tests: random programs and reference models for
//! the core data structures and, most importantly, an end-to-end
//! coherence oracle — random race-free phase-structured programs must
//! observe sequentially consistent values on both machines.
//!
//! Cases are generated from [`DetRng`] with fixed seeds (the container
//! has no network access to crates.io, so the original `proptest`
//! dependency was replaced with explicit deterministic case loops —
//! same properties, reproducible by construction).

use tempest_typhoon::base::addr::{PAGE_BYTES, VAddr};
use tempest_typhoon::base::workload::{
    Layout, Op, Placement, Region, ScriptWorkload, SHARED_SEGMENT_BASE,
};
use tempest_typhoon::base::{DetRng, NodeId, SystemConfig};
use tempest_typhoon::dirnnb::DirnnbMachine;
use tempest_typhoon::mem::cache::Probe;
use tempest_typhoon::mem::{CacheModel, FifoTlb};
use tempest_typhoon::stache::dir::SharerSet;
use tempest_typhoon::stache::StacheProtocol;
use tempest_typhoon::typhoon::TyphoonMachine;

// --- Reference-model properties ---------------------------------------

/// The cache never holds more lines than its capacity, never reports
/// a hit for a block that was not filled (or was invalidated), and
/// ownership state round-trips.
#[test]
fn cache_model_matches_reference() {
    for case in 0..64u64 {
        let mut rng = DetRng::new(0xCAC4E ^ case);
        let mut cache = CacheModel::new(1024, 2, 32, DetRng::new(7)); // 16 sets x 2
        let mut reference: std::collections::HashMap<u64, bool> = Default::default();
        let n_ops = 1 + rng.below_usize(399);
        for _ in 0..n_ops {
            let block = rng.below(64);
            match rng.below(4) {
                0 => {
                    // probe: a reference-absent block must miss; a hit
                    // must agree on ownership.
                    match cache.probe(block) {
                        Probe::Miss => {}
                        Probe::HitOwned => assert_eq!(reference.get(&block), Some(&true)),
                        Probe::HitShared => assert_eq!(reference.get(&block), Some(&false)),
                    }
                }
                1 => {
                    if cache.peek(block) == Probe::Miss {
                        if let Some(ev) = cache.fill(block, block.is_multiple_of(2)) {
                            reference.remove(&ev.block);
                        }
                        reference.insert(block, block.is_multiple_of(2));
                    }
                }
                2 => {
                    // Invalidation removes the block wherever it was;
                    // the reference follows suit either way.
                    cache.invalidate(block);
                    reference.remove(&block);
                }
                _ => {
                    if cache.set_owned(block, true) {
                        reference.insert(block, true);
                    }
                }
            }
            assert!(cache.resident() <= 32);
        }
    }
}

/// FIFO TLB: never exceeds capacity; an entry is resident iff it is
/// among the last `cap` distinct insertions (with FIFO, re-access
/// does not refresh position).
#[test]
fn fifo_tlb_matches_reference() {
    use tempest_typhoon::base::addr::Vpn;
    for case in 0..64u64 {
        let mut rng = DetRng::new(0x71B ^ (case << 8));
        let cap = 4;
        let mut tlb = FifoTlb::new(cap);
        let mut fifo: Vec<u64> = Vec::new();
        let n_keys = 1 + rng.below_usize(199);
        for _ in 0..n_keys {
            let k = rng.below(20);
            let expect_hit = fifo.contains(&k);
            let hit = tlb.access(Vpn(k));
            assert_eq!(hit, expect_hit);
            if !expect_hit {
                if fifo.len() == cap {
                    fifo.remove(0);
                }
                fifo.push(k);
            }
            assert_eq!(tlb.len(), fifo.len());
        }
    }
}

/// SharerSet agrees with a HashSet through arbitrary insert/remove
/// sequences, including across the pointer/bit-vector overflow.
#[test]
fn sharer_set_matches_reference() {
    for case in 0..64u64 {
        let mut rng = DetRng::new(0x54A2E2 ^ (case << 4));
        let mut set = SharerSet::new();
        let mut reference = std::collections::HashSet::new();
        let n_ops = 1 + rng.below_usize(199);
        for _ in 0..n_ops {
            let node = rng.below(64) as u16;
            let insert = rng.chance(0.5);
            let n = NodeId::new(node);
            if insert {
                set.insert(n);
                reference.insert(n);
            } else {
                let a = set.remove(n);
                let b = reference.remove(&n);
                assert_eq!(a, b);
            }
            assert_eq!(set.len(), reference.len());
            for cand in 0u16..64 {
                assert_eq!(
                    set.contains(NodeId::new(cand)),
                    reference.contains(&NodeId::new(cand))
                );
            }
        }
    }
}

// --- End-to-end coherence oracle ---------------------------------------

/// Builds a race-free variant: reads of a word are suppressed in phases
/// where another node writes it.
fn race_free_program(nodes: usize, words: usize, phases: usize, seed: u64) -> ScriptWorkload {
    let mut rng = DetRng::new(seed.wrapping_mul(0x9E37_79B9));
    let pages = 2usize;
    let homes: Vec<NodeId> = (0..pages)
        .map(|_| NodeId::new(rng.below(nodes as u64) as u16))
        .collect();
    let mut layout = Layout::new();
    layout.add(Region {
        base: VAddr::new(SHARED_SEGMENT_BASE),
        bytes: pages * PAGE_BYTES,
        placement: Placement::PerPage(homes),
        mode: 0,
    });
    let addr_of = |w: usize| {
        let page = w % pages;
        let slot = (w / pages) * 40;
        VAddr::new(SHARED_SEGMENT_BASE + (page * PAGE_BYTES + slot) as u64)
    };
    let mut values: Vec<Option<u64>> = vec![None; words];
    let mut scripts: Vec<Vec<Op>> = vec![Vec::new(); nodes];
    for phase in 0..phases {
        let mut writer: Vec<Option<usize>> = vec![None; words];
        for wr in writer.iter_mut() {
            if rng.chance(0.6) {
                *wr = Some(rng.below_usize(nodes));
            }
        }
        let mut read_plan: Vec<Vec<usize>> = vec![Vec::new(); nodes];
        for (n, plan) in read_plan.iter_mut().enumerate() {
            for (w, wr) in writer.iter().enumerate() {
                // Race-free: skip reads of words someone else writes
                // this phase.
                let racy = wr.is_some() && *wr != Some(n);
                if !racy && rng.chance(0.5) {
                    plan.push(w);
                }
            }
        }
        let mut new_values = values.clone();
        for (n, script) in scripts.iter_mut().enumerate() {
            for &w in &read_plan[n] {
                script.push(Op::Read {
                    addr: addr_of(w),
                    expect: values[w].or(Some(0)),
                });
            }
            for w in 0..words {
                if writer[w] == Some(n) {
                    let v = ((phase as u64) << 32) | ((w as u64) << 8) | n as u64;
                    script.push(Op::Write {
                        addr: addr_of(w),
                        value: v,
                    });
                    new_values[w] = Some(v);
                }
            }
            script.push(Op::Compute(1 + (n as u32 * 7) % 23));
            script.push(Op::Barrier);
        }
        values = new_values;
    }
    let mut w = ScriptWorkload::new(nodes).with_layout(layout);
    for (n, script) in scripts.into_iter().enumerate() {
        w.set(n, script);
    }
    w
}

/// Draws the (seed, nodes, words, phases) parameters of one oracle case.
fn oracle_params(rng: &mut DetRng) -> (u64, usize, usize, usize) {
    (
        rng.below(5_000),
        2 + rng.below_usize(4),
        2 + rng.below_usize(10),
        1 + rng.below_usize(7),
    )
}

/// Random race-free programs observe sequentially consistent values
/// on Typhoon/Stache (verify_values panics otherwise) and terminate.
#[test]
fn stache_is_sequentially_consistent_for_race_free_programs() {
    let mut rng = DetRng::new(0x0C0_FFEE);
    for _ in 0..24 {
        let (seed, nodes, words, phases) = oracle_params(&mut rng);
        let w = race_free_program(nodes, words, phases, seed);
        let cfg = SystemConfig::test_config(nodes);
        let mut m = TyphoonMachine::new(cfg, Box::new(w), &|id, layout, cfg| {
            Box::new(StacheProtocol::new(id, layout, cfg))
        });
        let r = m.run();
        assert!(r.cycles.raw() > 0);
    }
}

/// The same programs on the DirNNB machine.
#[test]
fn dirnnb_is_sequentially_consistent_for_race_free_programs() {
    let mut rng = DetRng::new(0xD14B);
    for _ in 0..24 {
        let (seed, nodes, words, phases) = oracle_params(&mut rng);
        let w = race_free_program(nodes, words, phases, seed);
        let cfg = SystemConfig::test_config(nodes);
        let r = DirnnbMachine::new(cfg, Box::new(w)).run();
        assert!(r.cycles.raw() > 0);
    }
}

/// Both machines run the same program deterministically.
#[test]
fn machines_deterministic_on_random_programs() {
    let mut case_rng = DetRng::new(0xDE7);
    let cfg = SystemConfig::test_config(3);
    for _ in 0..16 {
        let seed = case_rng.below(1_000);
        let run_t = |seed| {
            let w = race_free_program(3, 6, 3, seed);
            TyphoonMachine::new(cfg.clone(), Box::new(w), &|id, layout, cfg| {
                Box::new(StacheProtocol::new(id, layout, cfg))
            })
            .run()
            .cycles
        };
        assert_eq!(run_t(seed), run_t(seed));
        let run_d = |seed| {
            let w = race_free_program(3, 6, 3, seed);
            DirnnbMachine::new(cfg.clone(), Box::new(w)).run().cycles
        };
        assert_eq!(run_d(seed), run_d(seed));
    }
}

/// Sanity check that the race-free generator really generates work.
#[test]
fn race_free_generator_produces_reads_and_writes() {
    let w = race_free_program(4, 8, 5, 42);
    let mut reads = 0;
    let mut writes = 0;
    let mut w2 = w;
    use tempest_typhoon::base::workload::Workload;
    for n in 0..4 {
        if let Some(ops) = w2.next_chunk(NodeId::new(n)) {
            for op in ops {
                match op {
                    Op::Read { .. } => reads += 1,
                    Op::Write { .. } => writes += 1,
                    _ => {}
                }
            }
        }
    }
    assert!(reads > 0, "generator produced no reads");
    assert!(writes > 0, "generator produced no writes");
}

// --- Protocol-level property tests --------------------------------------

use tempest_typhoon::apps::em3d::{Em3d, Em3dParams, SyncMode};
use tempest_typhoon::apps::PhasedWorkload;
use tempest_typhoon::stache::sync::{ACQUIRE_OP, RELEASE_OP};
use tempest_typhoon::stache::{Em3dUpdateProtocol, LockLayer};

/// The custom EM3D update protocol stays sequentially consistent at
/// phase boundaries for arbitrary graph shapes, remote fractions, and
/// machine sizes — the fuzzy barrier must never let a phase start
/// before its values arrived (verification would fail).
#[test]
fn em3d_update_protocol_is_correct_for_random_graphs() {
    let mut rng = DetRng::new(0xE3D);
    for _ in 0..12 {
        let procs = 2 + rng.below_usize(7);
        let params = Em3dParams {
            graph_nodes: 40 * procs,
            degree: 1 + rng.below_usize(5),
            pct_remote: rng.below(101) as f64 / 100.0,
            iterations: 1 + rng.below_usize(4),
            procs,
            seed: rng.below(10_000),
            sync: SyncMode::Flush,
        };
        let cfg = SystemConfig::test_config(procs);
        let mut m = TyphoonMachine::new(
            cfg,
            Box::new(PhasedWorkload::new(Em3d::new(params))),
            &|id, layout, cfg| Box::new(Em3dUpdateProtocol::new(id, layout, cfg)),
        );
        let r = m.run();
        assert!(r.cycles.raw() > 0);
        // The custom protocol must never fall back to invalidation for
        // the graph-value pages.
        assert_eq!(r.report.get("stache.invals_sent"), Some(0.0));
    }
}

/// Random lock-protected critical sections never interleave: each
/// one writes a private token and reads it back verified.
#[test]
fn random_lock_programs_are_mutually_exclusive() {
    let mut case_rng = DetRng::new(0x10C2);
    for _ in 0..12 {
        let seed = case_rng.below(10_000);
        let nodes = 2 + case_rng.below_usize(5);
        let locks = 1 + case_rng.below_usize(3);
        let rounds = 1 + case_rng.below_usize(5);
        let mut rng = DetRng::new(seed);
        let mut layout = Layout::new();
        layout.add(Region {
            base: VAddr::new(SHARED_SEGMENT_BASE),
            bytes: PAGE_BYTES,
            placement: Placement::PerPage(vec![NodeId::new(0)]),
            mode: 0,
        });
        let mut w = ScriptWorkload::new(nodes).with_layout(layout);
        for n in 0..nodes {
            let mut ops = Vec::new();
            for round in 0..rounds {
                let lock = rng.below(locks as u64);
                // One guarded word per lock.
                let addr = VAddr::new(SHARED_SEGMENT_BASE + 64 * lock);
                let token = (seed << 20) ^ ((round as u64) << 10) ^ (n as u64 + 1);
                ops.push(Op::UserCall { op: ACQUIRE_OP, arg: lock });
                ops.push(Op::Read { addr, expect: None });
                ops.push(Op::Write { addr, value: token });
                ops.push(Op::Compute(1 + rng.below(120) as u32));
                ops.push(Op::Read { addr, expect: Some(token) });
                ops.push(Op::UserCall { op: RELEASE_OP, arg: lock });
            }
            w.set(n, ops);
        }
        let cfg = SystemConfig::test_config(nodes);
        let mut m = TyphoonMachine::new(cfg, Box::new(w), &|id, layout, cfg| {
            Box::new(LockLayer::new(StacheProtocol::new(id, layout, cfg), cfg.nodes))
        });
        let r = m.run();
        assert_eq!(r.report.get("lock.acquires"), Some((nodes * rounds) as f64));
    }
}
