//! Cross-crate integration: every benchmark kernel runs to completion on
//! both machines (Typhoon/Stache and DirNNB) at reduced scale with value
//! verification enabled — an end-to-end coherence oracle for the whole
//! stack — and the custom EM3D protocol runs under its flush-based
//! synchronization.

use tempest_typhoon::apps::appbt::{Appbt, AppbtParams};
use tempest_typhoon::apps::barnes::{Barnes, BarnesParams};
use tempest_typhoon::apps::em3d::{Em3d, Em3dParams, SyncMode};
use tempest_typhoon::apps::mp3d::{Mp3d, Mp3dParams};
use tempest_typhoon::apps::ocean::{Ocean, OceanParams};
use tempest_typhoon::apps::PhasedWorkload;
use tempest_typhoon::base::workload::Workload;
use tempest_typhoon::base::{Cycles, SystemConfig};
use tempest_typhoon::dirnnb::DirnnbMachine;
use tempest_typhoon::stache::{Em3dUpdateProtocol, StacheProtocol};
use tempest_typhoon::typhoon::TyphoonMachine;

const PROCS: usize = 8;

fn cfg() -> SystemConfig {
    let mut c = SystemConfig::test_config(PROCS);
    c.cpu.cache_bytes = 4 * 1024;
    c.verify_values = true;
    c
}

fn run_typhoon_stache(w: Box<dyn Workload>) -> Cycles {
    let mut m = TyphoonMachine::new(cfg(), w, &|id, layout, cfg| {
        Box::new(StacheProtocol::new(id, layout, cfg))
    });
    let r = m.run();
    assert!(r.cycles > Cycles::ZERO);
    r.cycles
}

fn run_dirnnb(w: Box<dyn Workload>) -> Cycles {
    let r = DirnnbMachine::new(cfg(), w).run();
    assert!(r.cycles > Cycles::ZERO);
    r.cycles
}

fn em3d(sync: SyncMode) -> Em3dParams {
    Em3dParams {
        graph_nodes: 800,
        degree: 4,
        pct_remote: 0.3,
        iterations: 2,
        procs: PROCS,
        seed: 11,
        sync,
    }
}

#[test]
fn em3d_runs_on_both_machines() {
    let t = run_typhoon_stache(Box::new(PhasedWorkload::new(Em3d::new(em3d(
        SyncMode::Barrier,
    )))));
    let d = run_dirnnb(Box::new(PhasedWorkload::new(Em3d::new(em3d(
        SyncMode::Barrier,
    )))));
    // Same workload, different machines: times differ but stay within an
    // order of magnitude of each other.
    let ratio = t.as_f64() / d.as_f64();
    assert!((0.2..5.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn em3d_update_protocol_runs_under_flush_sync() {
    let w = Box::new(PhasedWorkload::new(Em3d::new(em3d(SyncMode::Flush))));
    let mut m = TyphoonMachine::new(cfg(), w, &|id, layout, cfg| {
        Box::new(Em3dUpdateProtocol::new(id, layout, cfg))
    });
    let r = m.run();
    assert!(r.report.get("em3d.updates_sent").unwrap() > 0.0);
    assert_eq!(r.report.get("stache.invals_sent"), Some(0.0));
}

#[test]
fn em3d_update_beats_stache_at_high_remote_fraction() {
    let mut p = em3d(SyncMode::Barrier);
    p.pct_remote = 0.5;
    p.iterations = 4;
    let stache = run_typhoon_stache(Box::new(PhasedWorkload::new(Em3d::new(p.clone()))));
    let mut pf = p;
    pf.sync = SyncMode::Flush;
    let w = Box::new(PhasedWorkload::new(Em3d::new(pf)));
    let mut m = TyphoonMachine::new(cfg(), w, &|id, layout, cfg| {
        Box::new(Em3dUpdateProtocol::new(id, layout, cfg))
    });
    let update = m.run().cycles;
    assert!(
        update < stache,
        "custom update protocol ({update:?}) should beat Stache ({stache:?}) at 50% remote edges"
    );
}

#[test]
fn ocean_runs_on_both_machines() {
    let params = OceanParams {
        n: 34,
        iterations: 2,
        procs: PROCS,
        sync: tempest_typhoon::apps::ocean::OceanSync::Barrier,
    };
    run_typhoon_stache(Box::new(PhasedWorkload::new(Ocean::new(params.clone()))));
    run_dirnnb(Box::new(PhasedWorkload::new(Ocean::new(params))));
}

#[test]
fn mp3d_runs_on_both_machines() {
    let params = Mp3dParams {
        molecules: 400,
        cells_per_side: 5,
        steps: 3,
        procs: PROCS,
        seed: 3,
    };
    run_typhoon_stache(Box::new(PhasedWorkload::new(Mp3d::new(params.clone()))));
    run_dirnnb(Box::new(PhasedWorkload::new(Mp3d::new(params))));
}

#[test]
fn barnes_runs_on_both_machines() {
    let params = BarnesParams {
        bodies: 128,
        iterations: 2,
        theta: 0.8,
        dt: 0.05,
        procs: PROCS,
        seed: 9,
    };
    run_typhoon_stache(Box::new(PhasedWorkload::new(Barnes::new(params.clone()))));
    run_dirnnb(Box::new(PhasedWorkload::new(Barnes::new(params))));
}

#[test]
fn appbt_runs_on_both_machines() {
    let params = AppbtParams {
        n: 8,
        iterations: 2,
        procs: PROCS,
    };
    run_typhoon_stache(Box::new(PhasedWorkload::new(Appbt::new(params.clone()))));
    run_dirnnb(Box::new(PhasedWorkload::new(Appbt::new(params))));
}

#[test]
fn machines_are_deterministic_on_a_real_app() {
    let mk = || {
        Box::new(PhasedWorkload::new(Em3d::new(em3d(SyncMode::Barrier))))
    };
    assert_eq!(run_typhoon_stache(mk()), run_typhoon_stache(mk()));
    assert_eq!(run_dirnnb(mk()), run_dirnnb(mk()));
}

#[test]
fn protocol_mode_constants_stay_in_sync() {
    use tempest_typhoon::apps::em3d as app;
    use tempest_typhoon::stache::custom;
    assert_eq!(app::E_MODE, custom::EM3D_E_MODE);
    assert_eq!(app::H_MODE, custom::EM3D_H_MODE);
    assert_eq!(app::FLUSH_OP, custom::FLUSH_OP);
}

#[test]
fn ocean_boundary_push_beats_transparent_stache() {
    use tempest_typhoon::apps::ocean::{Ocean, OceanParams, OceanSync};
    use tempest_typhoon::stache::DelayedUpdateProtocol;
    let mk = |sync| OceanParams {
        n: 40,
        iterations: 6,
        procs: PROCS,
        sync,
    };
    // Transparent shared memory: every boundary row is invalidated and
    // re-fetched each sweep.
    let stache = {
        let w = Box::new(PhasedWorkload::new(Ocean::new(mk(OceanSync::Barrier))));
        let mut m = TyphoonMachine::new(cfg(), w, &|id, layout, cfg| {
            Box::new(StacheProtocol::new(id, layout, cfg))
        });
        m.run()
    };
    // Custom protocol: boundary rows are pushed once per sweep.
    let push = {
        let w = Box::new(PhasedWorkload::new(Ocean::new(mk(OceanSync::Push))));
        let mut m = TyphoonMachine::new(cfg(), w, &|id, layout, cfg| {
            Box::new(DelayedUpdateProtocol::new(id, layout, cfg))
        });
        m.run()
    };
    assert!(push.report.get("em3d.updates_sent").unwrap() > 0.0);
    assert!(
        push.report.get("net.packets").unwrap() < stache.report.get("net.packets").unwrap(),
        "push {} packets !< stache {}",
        push.report.get("net.packets").unwrap(),
        stache.report.get("net.packets").unwrap()
    );
    assert!(
        push.cycles < stache.cycles,
        "push {} !< stache {}",
        push.cycles,
        stache.cycles
    );
}
