//! Quickstart: build a Typhoon machine, run a small shared-memory
//! program under the Stache protocol, and read the statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tempest_typhoon::apps::em3d::{Em3d, Em3dParams, SyncMode};
use tempest_typhoon::apps::PhasedWorkload;
use tempest_typhoon::base::SystemConfig;
use tempest_typhoon::stache::StacheProtocol;
use tempest_typhoon::typhoon::TyphoonMachine;

#[allow(clippy::field_reassign_with_default)] // config idiom
fn main() {
    // 1. Configure the target system (defaults are the paper's Table 2).
    let mut cfg = SystemConfig::default();
    cfg.nodes = 8;
    cfg.cpu.cache_bytes = 16 * 1024;
    // Verify every load against a sequentially consistent execution.
    cfg.verify_values = true;

    // 2. Pick a workload: a small EM3D instance, transparent shared
    //    memory (barrier-synchronized).
    let params = Em3dParams {
        graph_nodes: 2_000,
        degree: 5,
        pct_remote: 0.2,
        iterations: 3,
        procs: cfg.nodes,
        seed: 42,
        sync: SyncMode::Barrier,
    };
    let workload = Box::new(PhasedWorkload::new(Em3d::new(params)));

    // 3. Build the machine with one Stache protocol instance per node and
    //    run it to completion.
    let mut machine = TyphoonMachine::new(cfg, workload, &|node, layout, cfg| {
        Box::new(StacheProtocol::new(node, layout, cfg))
    });
    let result = machine.run();

    // 4. Inspect the results.
    println!("executed in {} cycles\n", result.cycles);
    println!("{}", result.report);
}
