//! A miniature Figure 4: sweep the fraction of non-local EM3D edges and
//! compare the three systems at reduced scale.
//!
//! ```sh
//! cargo run --release --example em3d_sweep
//! ```

use tempest_typhoon::base::table::Table;
use tt_bench_shim::*;

// The bench harness lives in the workspace's tt-bench crate; the facade
// crate re-implements the few lines needed here so the example depends
// only on the published library surface.
mod tt_bench_shim {
    pub use tempest_typhoon::apps::em3d::{Em3d, Em3dParams, SyncMode};
    pub use tempest_typhoon::apps::PhasedWorkload;
    pub use tempest_typhoon::base::config::DirPlacement;
    pub use tempest_typhoon::base::SystemConfig;
    pub use tempest_typhoon::dirnnb::DirnnbMachine;
    pub use tempest_typhoon::stache::{Em3dUpdateProtocol, StacheProtocol};
    pub use tempest_typhoon::typhoon::TyphoonMachine;
}

fn params(pct: f64, procs: usize, sync: SyncMode) -> Em3dParams {
    Em3dParams {
        graph_nodes: 6_000,
        degree: 6,
        pct_remote: pct,
        iterations: 4,
        procs,
        seed: 0xE3D,
        sync,
    }
}

#[allow(clippy::field_reassign_with_default)] // config idiom
fn main() {
    let procs = 16;
    let mut cfg = SystemConfig::default();
    cfg.nodes = procs;
    cfg.cpu.cache_bytes = 16 * 1024;
    cfg.dirnnb.placement = DirPlacement::Owner;

    let mut table = Table::new(vec![
        "% non-local",
        "DirNNB",
        "Typhoon/Stache",
        "Typhoon/Update",
    ]);
    for pct in [0.0, 0.25, 0.5] {
        let app = Em3d::new(params(pct, procs, SyncMode::Barrier));
        let denom = (app.total_edges() * 4) as f64;

        let dirnnb = DirnnbMachine::new(
            cfg.clone(),
            Box::new(PhasedWorkload::new(Em3d::new(params(
                pct,
                procs,
                SyncMode::Barrier,
            )))),
        )
        .run()
        .cycles;
        let stache = TyphoonMachine::new(
            cfg.clone(),
            Box::new(PhasedWorkload::new(app)),
            &|id, layout, cfg| Box::new(StacheProtocol::new(id, layout, cfg)),
        )
        .run()
        .cycles;
        let update = TyphoonMachine::new(
            cfg.clone(),
            Box::new(PhasedWorkload::new(Em3d::new(params(
                pct,
                procs,
                SyncMode::Flush,
            )))),
            &|id, layout, cfg| Box::new(Em3dUpdateProtocol::new(id, layout, cfg)),
        )
        .run()
        .cycles;

        table.row(vec![
            format!("{:.0}%", pct * 100.0),
            format!("{:.2}", dirnnb.as_f64() / denom),
            format!("{:.2}", stache.as_f64() / denom),
            format!("{:.2}", update.as_f64() / denom),
        ]);
    }
    println!("EM3D cycles per edge per iteration ({procs} nodes, 6,000 graph nodes):\n");
    println!("{table}");
    println!("The custom delayed-update protocol eliminates the per-iteration");
    println!("invalidate/refetch round trips; its advantage grows with the");
    println!("fraction of remote edges (paper Figure 4).");
}
