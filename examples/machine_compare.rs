//! Run one application on both target machines and compare where the
//! cycles go — a small version of the paper's Figure 3 methodology with
//! the statistics behind it.
//!
//! ```sh
//! cargo run --release --example machine_compare [app]
//! ```
//! where `app` is one of `appbt`, `barnes`, `mp3d`, `ocean`, `em3d`
//! (default `ocean`).

use tempest_typhoon::apps::appbt::{Appbt, AppbtParams};
use tempest_typhoon::apps::barnes::{Barnes, BarnesParams};
use tempest_typhoon::apps::em3d::{Em3d, Em3dParams, SyncMode};
use tempest_typhoon::apps::mp3d::{Mp3d, Mp3dParams};
use tempest_typhoon::apps::ocean::{Ocean, OceanParams};
use tempest_typhoon::apps::PhasedWorkload;
use tempest_typhoon::base::stats::Report;
use tempest_typhoon::base::workload::Workload;
use tempest_typhoon::base::SystemConfig;
use tempest_typhoon::dirnnb::DirnnbMachine;
use tempest_typhoon::stache::StacheProtocol;
use tempest_typhoon::typhoon::TyphoonMachine;

fn build(app: &str, procs: usize) -> Box<dyn Workload> {
    match app {
        "appbt" => Box::new(PhasedWorkload::new(Appbt::new(AppbtParams {
            n: 12,
            iterations: 2,
            procs,
        }))),
        "barnes" => Box::new(PhasedWorkload::new(Barnes::new(BarnesParams {
            bodies: 1024,
            iterations: 2,
            theta: 0.8,
            dt: 0.05,
            procs,
            seed: 1,
        }))),
        "mp3d" => Box::new(PhasedWorkload::new(Mp3d::new(Mp3dParams {
            molecules: 4_000,
            cells_per_side: 10,
            steps: 3,
            procs,
            seed: 1,
        }))),
        "ocean" => Box::new(PhasedWorkload::new(Ocean::new(OceanParams {
            n: 66,
            iterations: 3,
            procs,
            sync: tempest_typhoon::apps::ocean::OceanSync::Barrier,
        }))),
        "em3d" => Box::new(PhasedWorkload::new(Em3d::new(Em3dParams {
            graph_nodes: 8_000,
            degree: 6,
            pct_remote: 0.15,
            iterations: 3,
            procs,
            seed: 1,
            sync: SyncMode::Barrier,
        }))),
        other => panic!("unknown app {other}; try appbt|barnes|mp3d|ocean|em3d"),
    }
}

fn show(report: &Report, keys: &[&str]) {
    for k in keys {
        if let Some(v) = report.get(k) {
            println!("    {k:32} {v}");
        }
    }
}

#[allow(clippy::field_reassign_with_default)] // config idiom
fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "ocean".into());
    let procs = 16;
    let mut cfg = SystemConfig::default();
    cfg.nodes = procs;
    cfg.cpu.cache_bytes = 8 * 1024;

    println!("== {app} on {procs} nodes, 8 KB caches ==\n");

    let ty = TyphoonMachine::new(cfg.clone(), build(&app, procs), &|id, layout, cfg| {
        Box::new(StacheProtocol::new(id, layout, cfg))
    })
    .run();
    println!("Typhoon/Stache: {} cycles", ty.cycles);
    show(
        &ty.report,
        &[
            "cpu.local_misses",
            "cpu.block_faults",
            "cpu.page_faults",
            "cpu.fault_stall_cycles",
            "cpu.barrier_wait_cycles",
            "np.handlers",
            "np.instructions",
            "net.packets",
            "stache.ro_requests",
            "stache.rw_requests",
            "stache.invals_sent",
        ],
    );

    let d = DirnnbMachine::new(cfg, build(&app, procs)).run();
    println!("\nDirNNB: {} cycles", d.cycles);
    show(
        &d.report,
        &[
            "cpu.local_misses",
            "cpu.remote_misses",
            "cpu.upgrades",
            "cpu.miss_stall_cycles",
            "cpu.barrier_wait_cycles",
            "dir.ops",
            "dir.invalidations",
            "dir.recalls",
            "net.packets",
        ],
    );

    println!(
        "\nTyphoon/Stache relative execution time: {:.3}",
        ty.cycles.as_f64() / d.cycles.as_f64()
    );
    println!("(< 1.0 means the user-level system is faster)");
}
