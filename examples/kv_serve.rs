//! Serving a distributed key-value cache on Tempest — the `tt-serve`
//! subsystem end to end.
//!
//! One workload (open-loop Zipfian clients, DESIGN.md §9) runs against
//! two servers on the same simulated machine: the transparent Stache
//! protocol (puts invalidate every cached copy of a key's slot) and the
//! hot-key write-update custom protocol (the home broadcasts updated
//! blocks to registered sharers, so readers keep hitting locally).
//! Latencies are simulated cycles from each request's scheduled arrival
//! to its completion stamp — queueing included — and every number
//! printed here is bit-reproducible.
//!
//! ```sh
//! cargo run --release --example kv_serve
//! ```

use tempest_typhoon::apps::run_kv_update;
use tempest_typhoon::base::SystemConfig;
use tempest_typhoon::serve::{run_kv_stache, KvOutcome, KvParams, KvVariant};

fn show(label: &str, out: &KvOutcome) {
    println!(
        "  {label:10}  {:>8} cycles  {:>6.2} req/kcycle  get p50/p99 {:>6}/{:>6}  \
         put p50/p99 {:>6}/{:>6}",
        out.cycles.raw(),
        out.requests_per_kcycle(),
        out.lat.get.quantile(0.50),
        out.lat.get.quantile(0.99),
        out.lat.put.quantile(0.50),
        out.lat.put.quantile(0.99),
    );
}

fn main() {
    // A hot, write-heavy point on a small machine: 8 nodes hammering
    // 512 keys at Zipf skew 1.2 with half the requests puts.
    let mut params = KvParams::small(KvVariant::Stache);
    params.nodes = 8;
    params.keys = 512;
    params.skew = 1.2;
    params.write_pct = 50;
    params.requests_per_node = 200;
    params.mean_interarrival = 500.0;
    params.value_words = 4;
    let cfg = SystemConfig::test_config(params.nodes);

    println!(
        "KV cache, {} nodes, {} keys, skew {}, {}% puts:",
        params.nodes, params.keys, params.skew, params.write_pct
    );
    let stache = run_kv_stache(&cfg, &params);
    show("stache", &stache);

    params.variant = KvVariant::Update;
    let update = run_kv_update(&cfg, &params);
    show("update", &update);

    let s = stache.lat.put.quantile(0.99);
    let u = update.lat.put.quantile(0.99);
    println!(
        "\nwrite-update cuts put p99 from {s} to {u} cycles ({:.1}x): readers\n\
         keep their copies across hot-key puts instead of re-faulting, so the\n\
         invalidation storm after every put never happens. (On much larger\n\
         machines the broadcast cost inverts this — see EXPERIMENTS.md.)",
        s as f64 / u as f64
    );
    assert!(u < s, "expected the update server to win at this point");
}
