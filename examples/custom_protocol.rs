//! Writing your own user-level shared-memory protocol against the
//! Tempest interface — the paper's central idea.
//!
//! This example implements a tiny *migratory* protocol: every page has a
//! single owner at a time and whole pages migrate on demand (grab the
//! page, take all 128 blocks). For a workload where one node at a time
//! works on a region (a pipeline), this needs one message pair per page
//! per handoff instead of one per block — the same kind of
//! application-specific win as the paper's EM3D protocol.
//!
//! It also demonstrates the Tempest mechanisms directly: user-level page
//! allocation and mapping, fine-grain tags, active messages, and resume.
//!
//! ```sh
//! cargo run --release --example custom_protocol
//! ```

use std::collections::HashMap;

use tempest_typhoon::base::addr::{VAddr, Vpn, PAGE_BYTES};
use tempest_typhoon::base::workload::{Layout, Op, Placement, Region, ScriptWorkload, SHARED_SEGMENT_BASE};
use tempest_typhoon::base::{NodeId, SystemConfig};
use tempest_typhoon::mem::{PageMeta, Tag};
use tempest_typhoon::net::{Payload, VirtualNet};
use tempest_typhoon::stache::StacheProtocol;
use tempest_typhoon::tempest::{
    BlockFault, HandlerId, Message, PageFault, Protocol, TempestCtx, ThreadId,
};
use tempest_typhoon::typhoon::TyphoonMachine;

/// "Give me page V": args `[vpn]`.
const GRAB: HandlerId = HandlerId(0x40);
/// "Here is page V": args `[vpn]`, repeated per-block data pushes follow
/// via bulk-free force-writes on the owner side — for simplicity the
/// whole page rides in 128 block messages.
const PAGE_BLOCK: HandlerId = HandlerId(0x41);
/// "Page transfer complete": args `[vpn]`.
const PAGE_DONE: HandlerId = HandlerId(0x42);

/// A whole-page-migration protocol.
struct Migratory {
    node: NodeId,
    /// Current owner of each page, as believed by this node (updated on
    /// transfer; the initial owner comes from the layout).
    owner: HashMap<Vpn, NodeId>,
    /// Faulting thread awaiting a page.
    waiting: Option<(ThreadId, Vpn)>,
    /// Pages handed off (statistics).
    handoffs: u64,
}

impl Migratory {
    fn new(node: NodeId, layout: &Layout, cfg: &SystemConfig) -> Self {
        let mut owner = HashMap::new();
        for (vpn, home, _mode) in layout.pages(cfg.nodes) {
            owner.insert(vpn, home);
        }
        Migratory {
            node,
            owner,
            waiting: None,
            handoffs: 0,
        }
    }
}

impl Protocol for Migratory {
    fn init(&mut self, ctx: &mut dyn TempestCtx) {
        let mine: Vec<Vpn> = self
            .owner
            .iter()
            .filter(|(_, o)| **o == self.node)
            .map(|(v, _)| *v)
            .collect();
        for vpn in mine {
            let ppn = ctx.alloc_page();
            ctx.map_page(vpn, ppn).unwrap();
            ctx.set_page_tags(vpn, Tag::ReadWrite);
            ctx.set_page_meta(
                vpn,
                PageMeta {
                    vpn: Some(vpn),
                    mode: 0,
                    user: [self.node.raw() as u64, 0],
                },
            );
        }
    }

    fn on_page_fault(&mut self, ctx: &mut dyn TempestCtx, fault: PageFault) {
        // First touch of a page currently owned elsewhere: allocate a
        // local frame and ask the owner to migrate the whole page.
        let vpn = fault.addr.page();
        let owner = self.owner[&vpn];
        assert_ne!(owner, self.node);
        ctx.charge(80);
        let ppn = ctx.alloc_page();
        ctx.map_page(vpn, ppn).unwrap();
        ctx.set_page_tags(vpn, Tag::Invalid);
        self.waiting = Some((fault.thread, vpn));
        ctx.send(
            owner,
            VirtualNet::Request,
            GRAB,
            Payload::args(&[vpn.0]),
        );
    }

    fn on_block_fault(&mut self, ctx: &mut dyn TempestCtx, fault: BlockFault) {
        // The page is mapped but we lost ownership earlier: grab it back.
        let vpn = fault.addr.page();
        let owner = self.owner[&vpn];
        assert_ne!(owner, self.node, "owner never faults on its own page");
        ctx.charge(14);
        self.waiting = Some((fault.thread, vpn));
        ctx.send(
            owner,
            VirtualNet::Request,
            GRAB,
            Payload::args(&[vpn.0]),
        );
    }

    fn on_message(&mut self, ctx: &mut dyn TempestCtx, msg: Message) {
        match msg.handler {
            GRAB => {
                let vpn = Vpn(msg.arg(0));
                // Hand the whole page over: push every block, then mark
                // our copy Invalid and record the new owner. (A real
                // implementation would use the bulk-transfer engine; the
                // message loop keeps the example self-contained.)
                self.handoffs += 1;
                ctx.charge(40);
                let base = vpn.base();
                for b in 0..tt_base_blocks() {
                    let addr = base.offset((b * 32) as u64);
                    let data = ctx.force_read_block(addr);
                    ctx.send(
                        msg.src,
                        VirtualNet::Response,
                        PAGE_BLOCK,
                        Payload::with_block(&[addr.raw()], data),
                    );
                    ctx.set_tag(addr, Tag::Invalid);
                }
                self.owner.insert(vpn, msg.src);
                ctx.send(
                    msg.src,
                    VirtualNet::Response,
                    PAGE_DONE,
                    Payload::args(&[vpn.0]),
                );
            }
            PAGE_BLOCK => {
                let addr = VAddr::new(msg.arg(0));
                ctx.charge(6);
                let data = msg.payload.block();
                ctx.force_write_block(addr, &data);
                ctx.set_tag(addr, Tag::ReadWrite);
            }
            PAGE_DONE => {
                let vpn = Vpn(msg.arg(0));
                ctx.charge(10);
                self.owner.insert(vpn, self.node);
                let (thread, waiting_vpn) =
                    self.waiting.take().expect("a thread is waiting");
                assert_eq!(waiting_vpn, vpn);
                ctx.resume(thread);
            }
            other => panic!("migratory: unknown handler {other:?}"),
        }
    }

    fn name(&self) -> &'static str {
        "migratory"
    }

    fn report(&self, report: &mut tempest_typhoon::base::stats::Report) {
        report.push_count("migratory.handoffs", self.handoffs);
    }
}

fn tt_base_blocks() -> usize {
    tempest_typhoon::base::addr::BLOCKS_PER_PAGE
}

/// A pipeline workload: each node in turn updates every word of a shared
/// page, then hands off at a barrier. Whole-page migration fits this
/// pattern perfectly; block-grain transparent shared memory pays a miss
/// per block per stage.
fn pipeline_workload(nodes: usize, stages: usize) -> ScriptWorkload {
    let mut layout = Layout::new();
    layout.add(Region {
        base: VAddr::new(SHARED_SEGMENT_BASE),
        bytes: PAGE_BYTES,
        placement: Placement::PerPage(vec![NodeId::new(0)]),
        mode: 0,
    });
    let mut w = ScriptWorkload::new(nodes).with_layout(layout);
    for n in 0..nodes {
        let mut ops = Vec::new();
        for stage in 0..stages {
            if stage % nodes == n {
                for word in 0..(PAGE_BYTES / 8) as u64 {
                    ops.push(Op::Write {
                        addr: VAddr::new(SHARED_SEGMENT_BASE + word * 8),
                        value: (stage as u64) << 32 | word,
                    });
                }
            } else {
                ops.push(Op::Compute(50));
            }
            ops.push(Op::Barrier);
        }
        w.set(n, ops);
    }
    w
}

#[allow(clippy::field_reassign_with_default)] // config idiom
fn main() {
    let nodes = 4;
    let stages = 8;
    let mut cfg = SystemConfig::default();
    cfg.nodes = nodes;
    cfg.cpu.cache_bytes = 16 * 1024;

    let mut migratory = TyphoonMachine::new(
        cfg.clone(),
        Box::new(pipeline_workload(nodes, stages)),
        &|id, layout, cfg| Box::new(Migratory::new(id, layout, cfg)),
    );
    let custom = migratory.run();

    let mut stache = TyphoonMachine::new(
        cfg,
        Box::new(pipeline_workload(nodes, stages)),
        &|id, layout, cfg| Box::new(StacheProtocol::new(id, layout, cfg)),
    );
    let transparent = stache.run();

    println!("pipeline over one shared page, {stages} stages on {nodes} nodes:");
    println!(
        "  custom migratory protocol : {:>9} cycles ({} page handoffs)",
        custom.cycles,
        custom.report.get("migratory.handoffs").unwrap_or(0.0)
    );
    println!(
        "  transparent Stache        : {:>9} cycles ({} block requests)",
        transparent.cycles,
        transparent.report.get("stache.rw_requests").unwrap_or(0.0)
    );
    let speedup = transparent.cycles.as_f64() / custom.cycles.as_f64();
    println!("  custom-protocol speedup   : {speedup:.2}x");
    assert!(
        speedup > 1.0,
        "whole-page migration should beat per-block faults on a pipeline"
    );
}
