//! Facade crate re-exporting the whole Tempest/Typhoon reproduction.
pub use tt_apps as apps;
pub use tt_base as base;
pub use tt_dirnnb as dirnnb;
pub use tt_mem as mem;
pub use tt_net as net;
pub use tt_serve as serve;
pub use tt_sim as sim;
pub use tt_stache as stache;
pub use tt_tempest as tempest;
pub use tt_typhoon as typhoon;
